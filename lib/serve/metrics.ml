(* Serving telemetry: latency percentiles, throughput, and the
   batch-occupancy histogram — the numbers that say whether continuous
   batching actually bought anything.  Rendered through Observe.Jsonw
   so BENCH_serve.json and `ftc serve --json` share one writer. *)

type t = {
  mutable latencies_ms : float list; (* completed requests, newest first *)
  mutable completed : int;
  mutable rejected : int;
  mutable tokens : int; (* request tokens advanced (padding excluded) *)
  mutable ticks : int;
  mutable exec_ms : float; (* wall time inside Executor.execute *)
  occupancy : (int, int) Hashtbl.t; (* active rows -> tick count *)
  mutable t_start : float;
  mutable t_stop : float;
}

let create () =
  {
    latencies_ms = [];
    completed = 0;
    rejected = 0;
    tokens = 0;
    ticks = 0;
    exec_ms = 0.;
    occupancy = Hashtbl.create 17;
    t_start = 0.;
    t_stop = 0.;
  }

let start m = m.t_start <- Unix.gettimeofday ()
let stop m = m.t_stop <- Unix.gettimeofday ()

let on_tick m ~active ~advanced ~exec_ms =
  m.ticks <- m.ticks + 1;
  m.tokens <- m.tokens + advanced;
  m.exec_ms <- m.exec_ms +. exec_ms;
  Hashtbl.replace m.occupancy active
    (1 + Option.value ~default:0 (Hashtbl.find_opt m.occupancy active))

let on_complete m r =
  m.completed <- m.completed + 1;
  m.latencies_ms <- Request.latency_ms r :: m.latencies_ms

let on_reject m = m.rejected <- m.rejected + 1

let wall_s m =
  let t1 = if m.t_stop > 0. then m.t_stop else Unix.gettimeofday () in
  Float.max 1e-9 (t1 -. m.t_start)

(* Nearest-rank percentile: the smallest sample s such that at least
   p% of the samples are <= s.  Pure over the list so the rank
   arithmetic is testable without staging completed requests. *)
let percentile_of samples p =
  match samples with
  | [] -> Float.nan
  | ls ->
      let a = Array.of_list ls in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
      a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let percentile m p = percentile_of m.latencies_ms p

let throughput_rps m = float_of_int m.completed /. wall_s m
let tokens_per_s m = float_of_int m.tokens /. wall_s m

let mean_occupancy m =
  let n = ref 0 and sum = ref 0 in
  Hashtbl.iter
    (fun occ ticks ->
      n := !n + ticks;
      sum := !sum + (occ * ticks))
    m.occupancy;
  if !n = 0 then 0. else float_of_int !sum /. float_of_int !n

let occupancy_histogram m =
  Hashtbl.fold (fun occ ticks acc -> (occ, ticks) :: acc) m.occupancy []
  |> List.sort compare

let completed m = m.completed
let rejected m = m.rejected
let ticks m = m.ticks
let tokens m = m.tokens
let exec_ms m = m.exec_ms

let jsonv m =
  Jsonw.Obj
    [
      ("completed", Jsonw.Int m.completed);
      ("rejected", Jsonw.Int m.rejected);
      ("ticks", Jsonw.Int m.ticks);
      ("tokens", Jsonw.Int m.tokens);
      ("wall_s", Jsonw.Float (wall_s m));
      ("exec_ms", Jsonw.Float m.exec_ms);
      ( "latency_ms",
        Jsonw.Obj
          [
            ("p50", Jsonw.Float (percentile m 50.));
            ("p95", Jsonw.Float (percentile m 95.));
            ("p99", Jsonw.Float (percentile m 99.));
          ] );
      ("throughput_rps", Jsonw.Float (throughput_rps m));
      ("tokens_per_s", Jsonw.Float (tokens_per_s m));
      ("mean_occupancy", Jsonw.Float (mean_occupancy m));
      ( "occupancy_histogram",
        Jsonw.Obj
          (List.map
             (fun (occ, t) -> (string_of_int occ, Jsonw.Int t))
             (occupancy_histogram m)) );
    ]

let pp ppf m =
  Format.fprintf ppf
    "completed %d, rejected %d, %d ticks / %d tokens in %.3f s@\n\
     latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms@\n\
     throughput %.1f req/s (%.1f tok/s), mean occupancy %.2f"
    m.completed m.rejected m.ticks m.tokens (wall_s m) (percentile m 50.)
    (percentile m 95.) (percentile m 99.) (throughput_rps m) (tokens_per_s m)
    (mean_occupancy m)
