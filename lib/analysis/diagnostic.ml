type severity = Error | Warning | Info | Note

type t = {
  severity : severity;
  code : string;
  message : string;
  span : (int * int) option;
  context : string option;
}

let make ?span ?context severity code message =
  { severity; code; message; span; context }

let error ?span ?context code message = make ?span ?context Error code message
let warning ?span ?context code message =
  make ?span ?context Warning code message
let info ?span ?context code message = make ?span ?context Info code message
let note ?span ?context code message = make ?span ?context Note code message

let errorf ?span ?context code fmt =
  Format.kasprintf (fun s -> error ?span ?context code s) fmt

let warningf ?span ?context code fmt =
  Format.kasprintf (fun s -> warning ?span ?context code s) fmt

let notef ?span ?context code fmt =
  Format.kasprintf (fun s -> note ?span ?context code s) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"
  | Note -> "note"

(* The check family a code belongs to: the verifier's V-codes group by
   their leading digit ("V012" -> "V0xx", "V300" -> "V3xx"), every
   other prefix groups as a whole ("L103" -> "Lxxx") — so tooling can
   filter a whole family without regexing message text. *)
let check_id code =
  let n = String.length code in
  let alpha = ref 0 in
  while !alpha < n && not (code.[!alpha] >= '0' && code.[!alpha] <= '9') do
    incr alpha
  done;
  if !alpha = 0 || !alpha = n then code
  else
    let prefix = String.sub code 0 !alpha in
    if prefix = "V" then prefix ^ String.make 1 code.[!alpha] ^ "xx"
    else prefix ^ String.make (n - !alpha) 'x'

let is_error d = d.severity = Error
let count_errors ds = List.length (List.filter is_error ds)
let count_warnings ds =
  List.length (List.filter (fun d -> d.severity = Warning) ds)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2 | Note -> 3

let sort ds =
  List.stable_sort
    (fun a b ->
      match (a.span, b.span) with
      | Some (la, ca), Some (lb, cb) ->
          if la <> lb then compare la lb
          else if ca <> cb then compare ca cb
          else compare (severity_rank a.severity) (severity_rank b.severity)
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None ->
          compare (severity_rank a.severity) (severity_rank b.severity))
    ds

let pp ?path fmt d =
  let prefix =
    match (path, d.span) with
    | Some p, Some (l, c) -> Printf.sprintf "%s:%d:%d: " p l c
    | Some p, None -> Printf.sprintf "%s: " p
    | None, Some (l, c) -> Printf.sprintf "%d:%d: " l c
    | None, None -> ""
  in
  let ctx = match d.context with Some c -> " (" ^ c ^ ")" | None -> "" in
  Format.fprintf fmt "%s%s[%s]: %s%s" prefix
    (severity_name d.severity)
    d.code d.message ctx

let pp_list ?path fmt ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf fmt "%a@." (pp ?path) d) ds;
  Format.fprintf fmt "%d errors, %d warnings@." (count_errors ds)
    (count_warnings ds)

(* ------------------------------ JSON ------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let fields =
    [ Printf.sprintf "\"severity\":\"%s\"" (severity_name d.severity);
      Printf.sprintf "\"code\":%S" d.code;
      Printf.sprintf "\"check_id\":%S" (check_id d.code) ]
    @ (match d.span with
      | Some (l, c) ->
          [ Printf.sprintf "\"line\":%d" l; Printf.sprintf "\"col\":%d" c ]
      | None -> [])
    @ (match d.context with
      | Some c -> [ Printf.sprintf "\"context\":\"%s\"" (json_escape c) ]
      | None -> [])
    @ [ Printf.sprintf "\"message\":\"%s\"" (json_escape d.message) ]
  in
  "{" ^ String.concat "," fields ^ "}"

let list_to_json ?path ds =
  let ds = sort ds in
  let file =
    match path with
    | Some p -> Printf.sprintf "\"file\":\"%s\"," (json_escape p)
    | None -> ""
  in
  Printf.sprintf "{%s\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d}" file
    (String.concat "," (List.map to_json ds))
    (count_errors ds) (count_warnings ds)
