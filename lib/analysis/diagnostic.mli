(** Structured diagnostics shared by the ETDG verifier and the [.ft]
    linter.

    Every finding carries a stable machine-readable code (V0xx/V1xx:
    structural / access-map verifier, V2xx: schedule legality, Lxxx:
    linter), a severity, an optional source span (for linter findings)
    and an optional context string (the pipeline stage or block the
    verifier was looking at).  Diagnostics render both as
    [file:line:col: severity[code]: message] text and as JSON for
    tooling. *)

type severity = Error | Warning | Info | Note

type t = {
  severity : severity;
  code : string;
  message : string;
  span : (int * int) option;  (** (line, column), 1-based *)
  context : string option;    (** pipeline stage / block name *)
}

val make :
  ?span:int * int -> ?context:string -> severity -> string -> string -> t
(** [make sev code message]. *)

val error : ?span:int * int -> ?context:string -> string -> string -> t
val warning : ?span:int * int -> ?context:string -> string -> string -> t
val info : ?span:int * int -> ?context:string -> string -> string -> t

val note : ?span:int * int -> ?context:string -> string -> string -> t
(** [Note] findings are sub-informational analysis facts (e.g. a race
    proof that degraded to "unproven"); they never fail a command. *)

val errorf :
  ?span:int * int ->
  ?context:string ->
  string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [errorf code fmt …]: formatted error constructor. *)

val warningf :
  ?span:int * int ->
  ?context:string ->
  string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val notef :
  ?span:int * int ->
  ?context:string ->
  string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_name : severity -> string

val check_id : string -> string
(** The machine-readable check family of a code: verifier codes group
    by leading digit (["V012"] ↦ ["V0xx"], ["V301"] ↦ ["V3xx"]), other
    prefixes as a whole (["L103"] ↦ ["Lxxx"]).  Emitted as the
    ["check_id"] field of the JSON rendering so downstream tools can
    filter families without regexing messages. *)

val is_error : t -> bool
val count_errors : t list -> int
val count_warnings : t list -> int

val sort : t list -> t list
(** Stable order: by source position (span-less findings last), then
    severity (errors first). *)

val pp : ?path:string -> Format.formatter -> t -> unit
(** One finding as a human-readable line. *)

val pp_list : ?path:string -> Format.formatter -> t list -> unit
(** Sorted findings, one per line, followed by an [N errors, M
    warnings] summary line. *)

val to_json : t -> string
val list_to_json : ?path:string -> t list -> string
(** [{"file":…,"diagnostics":[…],"errors":N,"warnings":M}] — the
    machine-readable output of [ftc lint --format json]. *)
