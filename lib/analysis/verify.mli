(** ETDG schedule-legality and well-formedness verifier.

    The compiler's passes (§5.1–§5.3: build → coarsen → reorder →
    emit) each rewrite the ETDG; nothing in the passes themselves
    proves the rewrite legal.  This module makes legality a static
    check that runs between every stage, in the spirit of polyhedral
    systems that validate every schedule against the dependence
    relation before emitting code:

    - {b structural invariants} (V0xx): the five {!Ir.validate}
      conditions, operation-node arity and operand resolution,
      write-edge/result agreement, buffer-table sanity;
    - {b access-map well-formedness} (V1xx): quasi-affine maps of the
      right arity, non-empty Fourier–Motzkin iteration domains, and
      in-bounds image of every access map over its block's domain
      (decided exactly on box corners for rectangular domains, by
      enumeration for small polyhedra);
    - {b schedule legality} (V2xx): every {!Reorder} transformation
      matrix must be unimodular ({!Linalg.is_unimodular}) and map every
      Table-4 dependence distance vector to a lexicographically
      positive vector; a non-identity transform's first row must
      satisfy Lamport's hyperplane condition [π · d ≥ 1].

    Checks whose exact decision would require enumerating a full-size
    iteration space are bounded: beyond a small-volume threshold they
    degrade to corner/box arguments or are skipped, so the verifier is
    cheap enough to run inside every compilation, test and benchmark. *)

exception Verification_failed of string * Diagnostic.t list
(** Stage name and the diagnostics (at least one error) of a fatal
    verification failure. *)

val structure : ?stage:string -> Ir.graph -> Diagnostic.t list
(** Structural invariants (V001–V006). *)

val access_maps : ?stage:string -> Ir.graph -> Diagnostic.t list
(** Domain non-emptiness and access-map checks (V010–V012). *)

val schedules : ?stage:string -> Ir.graph -> Diagnostic.t list
(** Schedule legality of every top-level block's reordering transform,
    as computed by {!Reorder.transform_matrix} (V020–V023). *)

val schedule :
  ?stage:string ->
  ?dvs:int array list ->
  Ir.block ->
  int array array ->
  Diagnostic.t list
(** Legality of an explicit transformation matrix for a block: square,
    unimodular (V020), dependence-preserving (V021), hyperplane
    condition (V022), arity (V023).  [dvs] overrides the distance
    vectors derived from the block — the fault-injection entry point. *)

val graph :
  ?stage:string ->
  ?check_schedules:bool ->
  ?check_races:bool ->
  Ir.graph ->
  Diagnostic.t list
(** All of the above, plus {!Effects.race_diagnostics} (V3xx): proven
    same-front races are errors, unproven disjointness a note.
    [check_schedules] defaults to [true]; pass [false] for graphs whose
    blocks are already reordered (their access maps are expressed in
    transformed coordinates, so recomputing a transform for them is
    meaningless) — race proofs are skipped there too.  [check_races]
    (default [true]) gates the V3xx pass independently. *)

val graph_exn :
  ?stage:string ->
  ?check_schedules:bool ->
  ?check_races:bool ->
  Ir.graph ->
  unit
(** @raise Verification_failed when {!graph} reports any error. *)

val install : ?fatal:bool -> unit -> unit
(** Register the verifier on {!Verify_hook} so that every subsequent
    pass run in the process is checked.  With [fatal] (default), any
    error raises {!Verification_failed} out of the offending pass. *)

val uninstall : unit -> unit
