(** Static linter for [.ft] programs.

    Runs entirely on the frontend — parse, scope analysis, shape/depth
    inference, compiled-fragment classification — and never executes
    the program or the simulator.  Findings:

    - L001 (error): syntax error, with the parser's position;
    - L100 (error): unbound variable;
    - L101 (warning): unused [let] binding or lambda parameter
      (names starting with ['_'] are exempt);
    - L102 (warning): a binder shadows an input or an enclosing
      binding;
    - L103 (warning): directly nested compute operators whose
      directions conflict under the Table-3 composition rules
      (e.g. [scanl] over [scanr]) — coarsening will not merge them;
    - L110 (warning): a declared input is never used;
    - L200 (error): shape/depth error from {!Typecheck}, located at the
      innermost offending expression;
    - L300 (info): the program type-checks but uses constructs outside
      the compiled fragment ({!Build.Unsupported}) — it will run on the
      interpreter only. *)

val source : ?path:string -> string -> Diagnostic.t list
(** Lint program text.  [path] is only used in rendered messages. *)

val file : string -> Diagnostic.t list
(** Lint a [.ft] file. @raise Sys_error on IO failure. *)
