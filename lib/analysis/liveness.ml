(* Buffer live intervals over a linear step schedule, and a first-fit
   arena layout with lifetime-based reuse.  See liveness.mli. *)

type access = { ac_buffer : string; ac_bytes : int; ac_write : bool }
type step = { sp_name : string; sp_accesses : access list }

type interval = {
  iv_buffer : string;
  iv_bytes : int;
  iv_first : int;
  iv_last : int;
  iv_fixed : bool;
}

let intervals ?(live_in = []) ?(live_out = []) steps =
  let last = Stdlib.max 0 (List.length steps - 1) in
  let tbl : (string, interval) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let touch name bytes i =
    match Hashtbl.find_opt tbl name with
    | None ->
        let fixed = List.mem name live_in || List.mem name live_out in
        order := name :: !order;
        Hashtbl.add tbl name
          {
            iv_buffer = name;
            iv_bytes = bytes;
            iv_first = (if List.mem name live_in then 0 else i);
            iv_last = (if List.mem name live_out then last else i);
            iv_fixed = fixed;
          }
    | Some iv ->
        Hashtbl.replace tbl name
          {
            iv with
            iv_bytes = Stdlib.max iv.iv_bytes bytes;
            iv_first = Stdlib.min iv.iv_first i;
            iv_last = Stdlib.max iv.iv_last i;
          }
  in
  List.iteri
    (fun i st ->
      List.iter (fun a -> touch a.ac_buffer a.ac_bytes i) st.sp_accesses)
    steps;
  (* a buffer that is written but never read afterwards still occupies
     its cell through the writing step; iv_last already covers that *)
  List.rev_map (Hashtbl.find tbl) !order

let interfere a b = a.iv_first <= b.iv_last && b.iv_first <= a.iv_last

let interference ivs =
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest ->
        let acc =
          List.fold_left
            (fun acc iv' ->
              if (not iv.iv_fixed) && (not iv'.iv_fixed) && interfere iv iv'
              then (iv.iv_buffer, iv'.iv_buffer) :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] ivs

type slot = { sl_buffer : string; sl_offset : int; sl_bytes : int }
type arena = { ar_slots : slot list; ar_total : int; ar_sum : int }

let round_up align n = (n + align - 1) / align * align

let layout ?(align = 64) ivs =
  let placeable =
    List.filter (fun iv -> not iv.iv_fixed) ivs
    |> List.stable_sort (fun a b ->
           if a.iv_first <> b.iv_first then compare a.iv_first b.iv_first
           else compare b.iv_bytes a.iv_bytes)
  in
  let placed = ref [] in
  List.iter
    (fun iv ->
      let size = Stdlib.max 1 iv.iv_bytes in
      (* candidate offsets: 0 and the end of every conflicting slot *)
      let conflicts =
        List.filter (fun (iv', _) -> interfere iv iv') !placed
      in
      let candidates =
        0
        :: List.map
             (fun (_, s) -> round_up align (s.sl_offset + s.sl_bytes))
             conflicts
        |> List.sort_uniq compare
      in
      let fits off =
        List.for_all
          (fun (_, s) ->
            off + size <= s.sl_offset || s.sl_offset + s.sl_bytes <= off)
          conflicts
      in
      let off = List.find fits candidates in
      placed :=
        (iv, { sl_buffer = iv.iv_buffer; sl_offset = off; sl_bytes = size })
        :: !placed)
    placeable;
  let slots = List.rev_map snd !placed in
  {
    ar_slots = slots;
    ar_total =
      List.fold_left
        (fun acc s -> Stdlib.max acc (s.sl_offset + s.sl_bytes))
        0 slots;
    ar_sum = List.fold_left (fun acc s -> acc + s.sl_bytes) 0 slots;
  }
