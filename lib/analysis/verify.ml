exception Verification_failed of string * Diagnostic.t list

let err ?stage ?ctx code fmt =
  let context =
    match (stage, ctx) with
    | Some s, Some c -> Some (s ^ ": " ^ c)
    | Some s, None -> Some s
    | None, c -> c
  in
  Diagnostic.errorf ?context code fmt

(* Work bound for exact decisions: domains with at most this many
   points are enumerated; larger ones get corner/box arguments only. *)
let small_volume = 4096

(* Bounding box implied by the single-variable constraints, as in
   Ir.validate: [None] when some dimension has no such bound. *)
let box_of_domain (d : Domain.t) =
  let lo = Array.make d.Domain.dim min_int
  and hi = Array.make d.Domain.dim max_int in
  List.iter
    (fun (c : Domain.ineq) ->
      let nz =
        Array.to_list c.Domain.coeffs
        |> List.mapi (fun k a -> (k, a))
        |> List.filter (fun (_, a) -> a <> 0)
      in
      match nz with
      | [ (k, 1) ] -> lo.(k) <- Stdlib.max lo.(k) (-c.Domain.const)
      | [ (k, -1) ] -> hi.(k) <- Stdlib.min hi.(k) c.Domain.const
      | _ -> ())
    d.Domain.cs;
  if Array.exists (fun v -> v = min_int) lo || Array.exists (fun v -> v = max_int) hi
  then None
  else Some (lo, hi)

let box_volume lo hi =
  let v = ref 1 in
  Array.iteri
    (fun i l ->
      if !v <= small_volume then
        v := !v * Stdlib.max 0 (hi.(i) - l + 1))
    lo;
  !v

(* `Empty / `Non_empty are exact; `Unknown means "too big or too
   general to decide cheaply" and is treated as fine. *)
let domain_status (d : Domain.t) =
  if d.Domain.dim = 0 then `Non_empty
  else
    match box_of_domain d with
    | None -> `Unknown
    | Some (lo, hi) ->
        if Array.exists (fun i -> lo.(i) > hi.(i)) (Array.init d.Domain.dim Fun.id)
        then `Empty
        else if box_volume lo hi <= small_volume then
          if Domain.is_empty d then `Empty else `Non_empty
        else `Unknown

(* Sample points witnessing the extremes of any affine map over the
   domain: all corners for a box (an affine function over a box attains
   its per-row min/max at a corner), every point for a small general
   polyhedron, nothing when the domain is too large to decide. *)
let probe_points (d : Domain.t) =
  match Domain.rect_extents d with
  | Some ext ->
      if Array.exists (fun (lo, hi) -> hi <= lo) ext then []
      else
        Array.to_list ext
        |> List.fold_left
             (fun acc (lo, hi) ->
               List.concat_map
                 (fun pt ->
                   if lo = hi - 1 then [ lo :: pt ] else [ lo :: pt; (hi - 1) :: pt ])
                 acc)
             [ [] ]
        |> List.map (fun pt -> Array.of_list (List.rev pt))
  | None -> (
      match box_of_domain d with
      | Some (lo, hi) when box_volume lo hi <= small_volume ->
          Domain.enumerate d
      | _ -> [])

(* ----------------------- structural checks ------------------------- *)

let check_operand ?stage b ~what ~labels ~n_ops ~pos acc (o : Ir.operand) =
  match o with
  | Ir.O_const _ -> acc
  | Ir.O_op i ->
      let limit = match pos with Some p -> p | None -> n_ops in
      if i < 0 || i >= limit then
        err ?stage "V003" "block %s: %s refers to operation node %d of %d%s"
          b.Ir.blk_name what i n_ops
          (if i >= 0 && i < n_ops then " (forward reference)" else "")
        :: acc
      else acc
  | Ir.O_var v ->
      if List.mem v labels then acc
      else
        err ?stage "V004"
          "block %s: %s names '%s', which no read edge or constant binds"
          b.Ir.blk_name what v
        :: acc

let rec check_block_ops ?stage ~outer_labels acc (b : Ir.block) =
  let labels =
    List.map (fun e -> e.Ir.e_label) (Ir.reads b)
    @ List.map fst b.Ir.blk_consts
    @ outer_labels
  in
  let n_ops = List.length b.Ir.blk_body in
  let acc =
    List.fold_left
      (fun acc (i, (o : Ir.op_node)) ->
        let acc =
          if List.length o.Ir.operands <> List.length o.Ir.operand_shapes then
            err ?stage "V002"
              "block %s: operation %d (%s) has %d operands but %d operand \
               shapes"
              b.Ir.blk_name i (Expr.prim_name o.Ir.op)
              (List.length o.Ir.operands)
              (List.length o.Ir.operand_shapes)
            :: acc
          else acc
        in
        List.fold_left
          (check_operand ?stage b
             ~what:(Printf.sprintf "operation %d (%s)" i (Expr.prim_name o.Ir.op))
             ~labels ~n_ops ~pos:(Some i))
          acc o.Ir.operands)
      acc
      (List.mapi (fun i o -> (i, o)) b.Ir.blk_body)
  in
  let n_writes = List.length (Ir.writes b) in
  let acc =
    if List.length b.Ir.blk_results <> n_writes then
      err ?stage "V005" "block %s: %d results for %d write edges"
        b.Ir.blk_name
        (List.length b.Ir.blk_results)
        n_writes
      :: acc
    else acc
  in
  let acc =
    List.fold_left
      (check_operand ?stage b ~what:"result" ~labels ~n_ops ~pos:None)
      acc b.Ir.blk_results
  in
  List.fold_left (check_block_ops ?stage ~outer_labels:labels) acc
    b.Ir.blk_children

let structure ?stage (g : Ir.graph) =
  let acc =
    match Ir.validate g with
    | Ok () -> []
    | Error es -> List.map (fun e -> err ?stage "V001" "%s" e) es
  in
  let acc =
    List.fold_left
      (fun acc (bf : Ir.buffer) ->
        let acc =
          if
            List.exists
              (fun (bf' : Ir.buffer) ->
                bf' != bf && bf'.Ir.buf_id = bf.Ir.buf_id)
              g.Ir.g_buffers
          then
            err ?stage "V006" "duplicate buffer id %d (%s)" bf.Ir.buf_id
              bf.Ir.buf_name
            :: acc
          else acc
        in
        if Array.exists (fun e -> e < 1) bf.Ir.buf_dims then
          err ?stage "V006" "buffer %s has a non-positive extent" bf.Ir.buf_name
          :: acc
        else acc)
      acc g.Ir.g_buffers
  in
  List.rev
    (List.fold_left (check_block_ops ?stage ~outer_labels:[]) acc g.Ir.g_blocks)

(* --------------------- access maps and domains --------------------- *)

let check_access_map ?stage (g : Ir.graph) (b : Ir.block) acc (e : Ir.edge) =
  let a = e.Ir.e_access in
  let d = Access_map.in_dim a in
  let m = Access_map.out_dim a in
  let ctx = b.Ir.blk_name in
  if Array.exists (fun row -> Array.length row <> d) a.Access_map.matrix then
    err ?stage ~ctx "V012"
      "%s edge '%s': ragged access matrix (declared arity %d)"
      (match e.Ir.e_dir with Ir.Read -> "read" | Ir.Write -> "write")
      e.Ir.e_label d
    :: acc
  else if m = 0 || d <> Domain.(b.Ir.blk_domain.dim) then
    (* arity mismatches against the block are V001 territory *)
    acc
  else
    match List.find_opt (fun bf -> bf.Ir.buf_id = e.Ir.e_buffer) g.Ir.g_buffers with
    | None -> acc (* unknown buffer is V001 *)
    | Some bf ->
        (* A read at a negative offset is boundary-predicated: region
           grouping (§5.1) deliberately widens domains to the hull, and
           the emitter masks the first iterations.  Right-directional
           aggregates (foldr/scanr) carry their state at a {e positive}
           offset and are masked at the last iterations — the mirror
           case, exempt when every positively-offset row is driven by a
           right-directional dimension.  Writes and ordinary reads must
           stay inside the buffer. *)
        let right_state_read () =
          Array.exists (fun o -> o > 0) a.Access_map.offset
          &&
          let ok = ref true in
          Array.iteri
            (fun row off ->
              if off > 0 then begin
                let driven = ref false in
                Array.iteri
                  (fun col c ->
                    if
                      c <> 0
                      && col < Array.length b.Ir.blk_ops
                      && (match b.Ir.blk_ops.(col) with
                         | Expr.Foldr | Expr.Scanr -> true
                         | _ -> false)
                    then driven := true)
                  a.Access_map.matrix.(row);
                if not !driven then ok := false
              end)
            a.Access_map.offset;
          !ok
        in
        if
          e.Ir.e_dir = Ir.Read
          && (Array.exists (fun o -> o < 0) a.Access_map.offset
             || right_state_read ())
        then acc
        else
          let rank = Array.length bf.Ir.buf_dims in
          let violation =
            List.find_map
              (fun t ->
                let idx = Access_map.apply a t in
                let bad = ref None in
                Array.iteri
                  (fun r i ->
                    if !bad = None && r < rank
                       && (i < 0 || i >= bf.Ir.buf_dims.(r))
                    then bad := Some (r, i, t))
                  idx;
                !bad)
              (probe_points b.Ir.blk_domain)
          in
          (match violation with
          | None -> acc
          | Some (row, i, t) ->
              err ?stage ~ctx "V011"
                "%s edge '%s' of buffer %s out of bounds: dimension %d gets \
                 index %d (extent %d) at iteration [%s]"
                (match e.Ir.e_dir with Ir.Read -> "read" | Ir.Write -> "write")
                e.Ir.e_label bf.Ir.buf_name row i
                bf.Ir.buf_dims.(row)
                (String.concat ","
                   (Array.to_list (Array.map string_of_int t)))
              :: acc)

let rec check_block_accesses ?stage g acc (b : Ir.block) =
  let acc =
    match domain_status b.Ir.blk_domain with
    | `Empty ->
        err ?stage "V010" "block %s has an empty iteration domain"
          b.Ir.blk_name
        :: acc
    | `Non_empty | `Unknown ->
        List.fold_left (check_access_map ?stage g b) acc b.Ir.blk_edges
  in
  List.fold_left (check_block_accesses ?stage g) acc b.Ir.blk_children

let access_maps ?stage (g : Ir.graph) =
  List.rev (List.fold_left (check_block_accesses ?stage g) [] g.Ir.g_blocks)

(* ------------------------- schedule legality ----------------------- *)

let vec_to_string v =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int v)) ^ "]"

let schedule ?stage ?dvs (b : Ir.block) (tm : int array array) =
  let d = Ir.block_dim b in
  let ctx = b.Ir.blk_name in
  let dvs =
    match dvs with
    | Some v -> v
    | None -> Dependence.block_distance_vectors b
  in
  if d = 0 then []
  else if
    Array.length tm <> d || Array.exists (fun row -> Array.length row <> d) tm
  then
    [ err ?stage ~ctx "V023"
        "transformation matrix is not %d x %d (block dimension %d)" d d d ]
  else if List.exists (fun dv -> Array.length dv <> d) dvs then
    [ err ?stage ~ctx "V023"
        "a distance vector has the wrong arity for a %d-dim block" d ]
  else if not (Linalg.is_unimodular tm) then
    [ err ?stage ~ctx "V020"
        "transformation matrix is not unimodular (determinant %s)"
        (Linalg.Q.to_string (Linalg.determinant tm)) ]
  else
    let acc =
      List.filter_map
        (fun dv ->
          if Dependence.carried ~transform:tm [ dv ] then None
          else
            Some
              (err ?stage ~ctx "V021"
                 "transform maps dependence distance %s to the \
                  lexicographically non-positive %s"
                 (vec_to_string dv)
                 (vec_to_string (Linalg.mat_vec tm dv))))
        dvs
    in
    if
      acc = [] && dvs <> []
      && tm <> Linalg.identity d
      && not (Dependence.legal_schedule tm.(0) dvs)
    then
      [ err ?stage ~ctx "V022"
          "hyperplane %s fails Lamport's condition pi . d >= 1 for some \
           dependence distance"
          (vec_to_string tm.(0)) ]
    else acc

let schedules ?stage (g : Ir.graph) =
  List.concat_map
    (fun b -> schedule ?stage b (Reorder.transform_matrix b))
    g.Ir.g_blocks

(* ------------------------------ driver ----------------------------- *)

let graph ?stage ?(check_schedules = true) ?(check_races = true) g =
  structure ?stage g @ access_maps ?stage g
  @ (if check_schedules then schedules ?stage g else [])
  (* Wavefront race proofs only make sense in original coordinates:
     reordered graphs' maps are already transformed, like schedules.
     A structurally broken graph gets its V0xx findings first; the
     race prover skips edges it cannot do arithmetic with. *)
  @ if check_schedules && check_races then Effects.race_diagnostics ?stage g
    else []

let graph_exn ?stage ?check_schedules ?check_races g =
  let ds = graph ?stage ?check_schedules ?check_races g in
  if List.exists Diagnostic.is_error ds then
    raise (Verification_failed (Option.value stage ~default:"verify", ds))

let install ?(fatal = true) () =
  Verify_hook.register (fun ~stage g ->
      (* Reordered graphs carry transformed access maps; recomputing a
         transform for them is not meaningful. *)
      let check_schedules = stage <> "reorder" in
      let ds = graph ~stage ~check_schedules g in
      if fatal && List.exists Diagnostic.is_error ds then
        raise (Verification_failed (stage, ds)))

let uninstall () = Verify_hook.clear ()
