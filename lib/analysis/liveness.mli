(** Buffer liveness and arena layout.

    Input: a linear schedule of steps (the block dataflow order the VM
    executes), each step naming the buffers it reads and writes.
    Output: per-buffer live intervals (first definition to last use),
    the interference relation, and a greedy first-fit arena layout in
    which buffers with disjoint lifetimes share storage — the proposal
    a future arena allocator can consume verbatim (ROADMAP item 2).

    The pass is deliberately schedule-representation-agnostic: it knows
    nothing of {!Ir} or plans, only named steps and byte sizes, so both
    the graph-level analyzer and any later plan-level allocator can
    feed it. *)

type access = {
  ac_buffer : string;
  ac_bytes : int;
  ac_write : bool;
}

type step = {
  sp_name : string;
  sp_accesses : access list;
}

type interval = {
  iv_buffer : string;
  iv_bytes : int;
  iv_first : int;  (** step index of the first write; 0 for live-in *)
  iv_last : int;   (** step index of the last read;
                       [length steps - 1] for live-out *)
  iv_fixed : bool; (** live-in/live-out buffers — allocated outside
                       the arena, never placed *)
}

val intervals :
  ?live_in:string list -> ?live_out:string list -> step list -> interval list
(** One interval per distinct buffer, in order of first appearance.
    [live_in] buffers (graph inputs) are live from step 0, [live_out]
    buffers (graph outputs) to the final step; both are [iv_fixed]. *)

val interfere : interval -> interval -> bool
(** Live ranges overlap. *)

val interference : interval list -> (string * string) list
(** All interfering unordered pairs among non-fixed intervals. *)

type slot = {
  sl_buffer : string;
  sl_offset : int;  (** byte offset inside the arena *)
  sl_bytes : int;
}

type arena = {
  ar_slots : slot list;  (** non-fixed buffers only, placement order *)
  ar_total : int;        (** arena extent in bytes *)
  ar_sum : int;          (** sum of slot sizes — [ar_total < ar_sum]
                             means in-place reuse actually happened *)
}

val layout : ?align:int -> interval list -> arena
(** First-fit by interval start (ties: larger first): each non-fixed
    buffer takes the lowest [align]-rounded offset (default 64) whose
    byte range is disjoint from every already-placed buffer it
    interferes with.  Non-interfering buffers may overlap — that is the
    reuse. *)
