type binder = {
  b_name : string;
  b_span : (int * int) option;
  b_what : string;
  mutable b_used : bool;
}

let span_of (s : Parse.span) = (s.Parse.sp_line, s.Parse.sp_col)

let expr_span sp e = Option.map span_of (Parse.expr_span sp e)

let exempt name = String.length name > 0 && name.[0] = '_'

(* The operator heading the (possibly let-wrapped) body of a lambda:
   the dimension that would sit directly inside this one in the ETDG. *)
let rec head_soac (e : Expr.t) =
  match e with
  | Expr.Soac s -> Some (e, s)
  | Expr.Let (_, _, body) -> head_soac body
  | _ -> None

let check_scope sp (p : Expr.program) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let bind what (name, span) =
    { b_name = name; b_span = span; b_what = what; b_used = false }
  in
  let shadow_check env b =
    if not (exempt b.b_name) then
      match List.find_opt (fun b' -> b'.b_name = b.b_name) env with
      | Some outer ->
          emit
            (Diagnostic.warningf ?span:b.b_span "L102"
               "%s '%s' shadows an enclosing %s" b.b_what b.b_name
               outer.b_what)
      | None -> ()
  in
  let unused_check b =
    if (not b.b_used) && not (exempt b.b_name) then
      emit
        (Diagnostic.warningf ?span:b.b_span "L101" "unused %s '%s'" b.b_what
           b.b_name)
  in
  let binder_span_of e name =
    Parse.binder_spans sp e
    |> List.find_map (fun (n, s) -> if n = name then Some (span_of s) else None)
  in
  let rec walk env (e : Expr.t) =
    match e with
    | Expr.Var v -> (
        match List.find_opt (fun b -> b.b_name = v) env with
        | Some b -> b.b_used <- true
        | None ->
            emit
              (Diagnostic.errorf ?span:(expr_span sp e) "L100"
                 "unbound variable '%s'" v))
    | Expr.Lit _ -> ()
    | Expr.Tuple es | Expr.Zip es -> List.iter (walk env) es
    | Expr.Proj (e1, _) | Expr.Access (_, e1) | Expr.Index (e1, _) ->
        walk env e1
    | Expr.Prim (_, es) -> List.iter (walk env) es
    | Expr.Let (x, e1, e2) ->
        walk env e1;
        let b = bind "let binding" (x, binder_span_of e x) in
        shadow_check env b;
        walk (b :: env) e2;
        unused_check b
    | Expr.Soac { kind; fn; init; xs } ->
        walk env xs;
        Option.iter (walk env) init;
        (match head_soac fn.body with
        | Some (inner, s) when Coarsen.compose_ops kind s.Expr.kind = None ->
            emit
              (Diagnostic.warningf
                 ?span:(expr_span sp inner)
                 "L103"
                 "%s nested directly under %s: opposite directions cannot \
                  compose (Table 3), coarsening will not merge this nest"
                 (Expr.soac_kind_name s.Expr.kind)
                 (Expr.soac_kind_name kind))
        | _ -> ());
        let bs =
          List.map
            (fun x -> bind "lambda parameter" (x, binder_span_of e x))
            fn.params
        in
        List.iter (shadow_check env) bs;
        walk (List.rev_append bs env) fn.body;
        List.iter unused_check bs
  in
  let input_span name =
    Parse.input_spans sp
    |> List.find_map (fun (n, s) -> if n = name then Some (span_of s) else None)
  in
  let inputs =
    List.map (fun (name, _) -> bind "input" (name, input_span name)) p.Expr.inputs
  in
  walk (List.rev inputs) p.Expr.body;
  List.iter
    (fun b ->
      if (not b.b_used) && not (exempt b.b_name) then
        emit
          (Diagnostic.warningf ?span:b.b_span "L110" "input '%s' is never used"
             b.b_name))
    inputs;
  List.rev !diags

let source ?path:_ text =
  match Parse.program_spanned text with
  | exception Parse.Syntax_error { line; col; message } ->
      [ Diagnostic.error ~span:(line, col) "L001" message ]
  | p, sp -> (
      let scope = check_scope sp p in
      if List.exists Diagnostic.is_error scope then scope
      else
        match Typecheck.check_program_located p with
        | Error (at, msg) ->
            let span = Option.bind at (expr_span sp) in
            scope @ [ Diagnostic.error ?span "L200" msg ]
        | Ok _ -> (
            (* Classify against the compiled fragment; never simulate. *)
            match Build.build p with
            | _ -> scope
            | exception Build.Unsupported msg ->
                scope
                @ [ Diagnostic.info "L300"
                      (Printf.sprintf
                         "outside the compiled fragment (interpreter only): %s"
                         msg) ]
            | exception Verify.Verification_failed (_, ds) -> scope @ ds))

let file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  source ~path text
