(* Static memory-effect analysis: footprints of access maps over
   iteration domains, and exact/conservative race proofs for the
   wavefront anti-chains the VM executes.  See effects.mli. *)

type precision = Must | May

type region = {
  rg_buffer : int;
  rg_name : string;
  rg_write : bool;
  rg_label : string;
  rg_lo : int array;
  rg_hi : int array;
  rg_precision : precision;
}

type footprint = {
  fp_block : string;
  fp_points : int;
  fp_reads : region list;
  fp_writes : region list;
}

type race_kind = WW | RW

type verdict =
  | Proven of string
  | Unproven of string
  | Race of race_kind * string

type race_report = {
  rr_block : string;
  rr_points : int;
  rr_fronts : int;
  rr_verdict : verdict;
}

let default_threshold = 4096

let verdict_name = function
  | Proven _ -> "proven-disjoint"
  | Unproven _ -> "unproven"
  | Race _ -> "race"

let buffer_bytes (bf : Ir.buffer) =
  4
  * Array.fold_left ( * ) 1 bf.Ir.buf_dims
  * Shape.numel bf.Ir.buf_elem

let vec_to_string v =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int v)) ^ "]"

(* A read edge whose label is bound in blk_consts never executes: the
   VM resolves the operand to the literal before consulting the edge
   table.  Mirror that here so footprints and race proofs describe
   exactly what runs. *)
let live_edges (b : Ir.block) =
  List.filter
    (fun (e : Ir.edge) ->
      e.Ir.e_dir = Ir.Write
      || not (List.mem_assoc e.Ir.e_label b.Ir.blk_consts))
    b.Ir.blk_edges

(* Minimal well-formedness for doing arithmetic with an edge; anything
   failing this is V001/V012 territory and is skipped here. *)
let edge_usable (g : Ir.graph) (b : Ir.block) (e : Ir.edge) =
  let a = e.Ir.e_access in
  Access_map.in_dim a = b.Ir.blk_domain.Domain.dim
  && Array.length a.Access_map.offset = Array.length a.Access_map.matrix
  && Array.for_all
       (fun row -> Array.length row = Access_map.in_dim a)
       a.Access_map.matrix
  && List.exists (fun bf -> bf.Ir.buf_id = e.Ir.e_buffer) g.Ir.g_buffers

(* ------------------------------ footprints ------------------------- *)

(* Per-row range of an affine map over a box: a linear function of
   independently-ranging variables attains its extremes coordinatewise,
   so min/max come straight off the coefficient signs. *)
let row_range row off ext =
  let lo = ref off and hi = ref off in
  Array.iteri
    (fun j c ->
      let l, h = ext.(j) in
      (* h is exclusive; domain non-empty means l <= h - 1 *)
      if c > 0 then begin
        lo := !lo + (c * l);
        hi := !hi + (c * (h - 1))
      end
      else if c < 0 then begin
        lo := !lo + (c * (h - 1));
        hi := !hi + (c * l)
      end)
    row;
  (!lo, !hi)

(* The box is exact (Must) when the map is a partial permutation with
   ±1 entries: every row reads at most one variable, no variable drives
   two rows — then the image over a box is itself a box. *)
let box_is_exact matrix =
  let d = if Array.length matrix = 0 then 0 else Array.length matrix.(0) in
  let used = Array.make (Stdlib.max 1 d) false in
  Array.for_all
    (fun row ->
      let nz = ref [] in
      Array.iteri (fun j c -> if c <> 0 then nz := (j, c) :: !nz) row;
      match !nz with
      | [] -> true
      | [ (j, c) ] ->
          if abs c <> 1 || used.(j) then false
          else begin
            used.(j) <- true;
            true
          end
      | _ -> false)
    matrix

let clip_region bf lo hi =
  let changed = ref false in
  let lo' =
    Array.map
      (fun v ->
        let c = Stdlib.max v 0 in
        if c <> v then changed := true;
        c)
      lo
  and hi' =
    Array.mapi
      (fun i v ->
        let bound =
          if i < Array.length bf.Ir.buf_dims then bf.Ir.buf_dims.(i) - 1
          else v
        in
        let c = Stdlib.min v bound in
        if c <> v then changed := true;
        c)
      hi
  in
  (lo', hi', !changed)

let edge_region (g : Ir.graph) (b : Ir.block) points (e : Ir.edge) =
  let bf = Ir.buffer g e.Ir.e_buffer in
  let a = e.Ir.e_access in
  let m = Access_map.out_dim a in
  let mk lo hi prec =
    let lo, hi, clipped = clip_region bf lo hi in
    {
      rg_buffer = bf.Ir.buf_id;
      rg_name = bf.Ir.buf_name;
      rg_write = e.Ir.e_dir = Ir.Write;
      rg_label = e.Ir.e_label;
      rg_lo = lo;
      rg_hi = hi;
      rg_precision = (if clipped then May else prec);
    }
  in
  match Domain.rect_extents b.Ir.blk_domain with
  | Some ext ->
      let lo = Array.make m 0 and hi = Array.make m 0 in
      Array.iteri
        (fun r row ->
          let l, h = row_range row a.Access_map.offset.(r) ext in
          lo.(r) <- l;
          hi.(r) <- h)
        a.Access_map.matrix;
      mk lo hi (if box_is_exact a.Access_map.matrix then Must else May)
  | None -> (
      match points with
      | Some pts when pts <> [] ->
          let lo = Array.make m max_int and hi = Array.make m min_int in
          List.iter
            (fun p ->
              let idx = Access_map.apply a p in
              Array.iteri
                (fun r v ->
                  lo.(r) <- Stdlib.min lo.(r) v;
                  hi.(r) <- Stdlib.max hi.(r) v)
                idx)
            pts;
          mk lo hi May
      | _ ->
          (* unknown domain shape: the whole buffer, may *)
          mk (Array.make m 0)
            (Array.map (fun d -> d - 1) bf.Ir.buf_dims)
            May)

let domain_points ?(threshold = default_threshold) (d : Domain.t) =
  match Domain.rect_extents d with
  | Some ext ->
      let vol =
        Array.fold_left (fun acc (l, h) -> acc * Stdlib.max 0 (h - l)) 1 ext
      in
      if vol <= threshold then Some (Domain.enumerate d) else None
  | None ->
      (* general polyhedra in this compiler are small (they only arise
         from region grouping); card bounds the work before enumerating *)
      if Domain.card d <= threshold then Some (Domain.enumerate d) else None

let block_footprint (g : Ir.graph) (b : Ir.block) =
  let points = domain_points b.Ir.blk_domain in
  let edges = List.filter (edge_usable g b) (live_edges b) in
  let regions = List.map (edge_region g b points) edges in
  let count =
    match points with
    | Some pts -> List.length pts
    | None -> Domain.card b.Ir.blk_domain
  in
  {
    fp_block = b.Ir.blk_name;
    fp_points = count;
    fp_reads = List.filter (fun r -> not r.rg_write) regions;
    fp_writes = List.filter (fun r -> r.rg_write) regions;
  }

let footprints (g : Ir.graph) =
  List.map (block_footprint g) (Ir.dataflow_order g)

let region_cells r =
  let v = ref 1 in
  Array.iteri
    (fun i l -> v := !v * Stdlib.max 0 (r.rg_hi.(i) - l + 1))
    r.rg_lo;
  !v

let boxes_disjoint (lo1, hi1) (lo2, hi2) =
  let n = Array.length lo1 in
  let rec go i =
    if i >= n then false
    else if hi1.(i) < lo2.(i) || hi2.(i) < lo1.(i) then true
    else go (i + 1)
  in
  go 0

(* Footprint of one edge over a caller-chosen sub-box of the iteration
   space — the per-device footprint the distributed partitioner checks
   for disjointness.  Same interval arithmetic as [edge_region]'s
   rectangular branch; the sub-box (a device's shard, optionally
   widened by its halo) replaces the full domain extents. *)
let subrange_region (g : Ir.graph) (_b : Ir.block) ~ext (e : Ir.edge) =
  let bf = Ir.buffer g e.Ir.e_buffer in
  let a = e.Ir.e_access in
  let m = Access_map.out_dim a in
  let lo = Array.make m 0 and hi = Array.make m 0 in
  Array.iteri
    (fun r row ->
      let l, h = row_range row a.Access_map.offset.(r) ext in
      lo.(r) <- l;
      hi.(r) <- h)
    a.Access_map.matrix;
  let lo, hi, clipped = clip_region bf lo hi in
  {
    rg_buffer = bf.Ir.buf_id;
    rg_name = bf.Ir.buf_name;
    rg_write = e.Ir.e_dir = Ir.Write;
    rg_label = e.Ir.e_label;
    rg_lo = lo;
    rg_hi = hi;
    rg_precision =
      (if (not clipped) && box_is_exact a.Access_map.matrix then Must else May);
  }

let regions_disjoint r1 r2 =
  r1.rg_buffer <> r2.rg_buffer
  || boxes_disjoint (r1.rg_lo, r1.rg_hi) (r2.rg_lo, r2.rg_hi)

(* ------------------------------ race proofs ------------------------ *)

(* The hyperplane the VM's scheduler keys fronts on: None when the
   block carries no dependence (the whole domain is one anti-chain). *)
let hyperplane (b : Ir.block) =
  if Dependence.block_distance_vectors b = [] then None
  else Some (Reorder.transform_matrix b).(0)

let front_count pi dom points =
  match pi with
  | None -> 1
  | Some pi -> (
      match points with
      | Some pts ->
          let keys = Hashtbl.create 16 in
          List.iter
            (fun p ->
              let k = ref 0 in
              Array.iteri (fun i c -> k := !k + (c * p.(i))) pi;
              Hashtbl.replace keys !k ())
            pts;
          Hashtbl.length keys
      | None -> (
          match Domain.rect_extents dom with
          | Some ext ->
              let lo, hi = row_range pi 0 ext in
              hi - lo + 1
          | None -> 0))

exception Found of race_kind * string

let in_bounds (bf : Ir.buffer) idx =
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if i < Array.length bf.Ir.buf_dims
         && (v < 0 || v >= bf.Ir.buf_dims.(i))
      then ok := false)
    idx;
  !ok

(* Exact decision by enumeration: replay the VM's front grouping and
   hash every written cell; a duplicate write in one front is a W-W
   race, a read of a cell some *other* point of the same front writes
   is an R-W race.  Out-of-bounds reads are boundary-predicated (the
   region's consts mask them) and skipped. *)
let enumerate_races g pi points writes reads =
  let fronts = Hashtbl.create 16 in
  let key p =
    match pi with
    | None -> 0
    | Some pi ->
        let k = ref 0 in
        Array.iteri (fun i c -> k := !k + (c * p.(i))) pi;
        !k
  in
  List.iter
    (fun p ->
      let k = key p in
      Hashtbl.replace fronts k
        (p :: (try Hashtbl.find fronts k with Not_found -> [])))
    points;
  try
    Hashtbl.iter
      (fun front pts ->
        let cells = Hashtbl.create 64 in
        List.iter
          (fun p ->
            List.iter
              (fun (e : Ir.edge) ->
                let idx = Access_map.apply e.Ir.e_access p in
                let ck = (e.Ir.e_buffer, Array.to_list idx) in
                match Hashtbl.find_opt cells ck with
                | Some q ->
                    raise
                      (Found
                         ( WW,
                           Printf.sprintf
                             "front %d: iterations %s and %s both write \
                              %s%s"
                             front (vec_to_string q) (vec_to_string p)
                             (Ir.buffer g e.Ir.e_buffer).Ir.buf_name
                             (vec_to_string idx) ))
                | None -> Hashtbl.add cells ck p)
              writes)
          pts;
        List.iter
          (fun p ->
            List.iter
              (fun (e : Ir.edge) ->
                let bf = Ir.buffer g e.Ir.e_buffer in
                let idx = Access_map.apply e.Ir.e_access p in
                if in_bounds bf idx then
                  match
                    Hashtbl.find_opt cells (e.Ir.e_buffer, Array.to_list idx)
                  with
                  | Some q when q <> p ->
                      raise
                        (Found
                           ( RW,
                             Printf.sprintf
                               "front %d: iteration %s reads %s%s, \
                                written by sibling %s"
                               front (vec_to_string p) bf.Ir.buf_name
                               (vec_to_string idx) (vec_to_string q) ))
                  | _ -> ())
              reads)
          pts)
      fronts;
    Proven
      (Printf.sprintf
         "enumerated %d iterations over %d fronts: all same-front cells \
          disjoint"
         (List.length points) (Hashtbl.length fronts))
  with Found (k, m) -> Race (k, m)

(* ---- algebraic path (domains too large to enumerate) --------------- *)

module Q = Linalg.Q

(* Solve M x = b exactly over Q.  Returns [`Unique x] when M has full
   column rank and the system is consistent, [`None] when inconsistent,
   [`Many] when the solution space is positive-dimensional. *)
let solve_exact m b =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  if cols = 0 then `Unique [||]
  else begin
    let a =
      Array.init rows (fun i ->
          Array.init (cols + 1) (fun j ->
              Q.of_int (if j < cols then m.(i).(j) else b.(i))))
    in
    let piv_of_col = Array.make cols (-1) in
    let r = ref 0 in
    for c = 0 to cols - 1 do
      if !r < rows then begin
        (* find a pivot *)
        let p = ref (-1) in
        for i = !r to rows - 1 do
          if !p = -1 && not (Q.is_zero a.(i).(c)) then p := i
        done;
        if !p >= 0 then begin
          let tmp = a.(!r) in
          a.(!r) <- a.(!p);
          a.(!p) <- tmp;
          let inv = Q.div Q.one a.(!r).(c) in
          a.(!r) <- Array.map (fun x -> Q.mul x inv) a.(!r);
          for i = 0 to rows - 1 do
            if i <> !r && not (Q.is_zero a.(i).(c)) then begin
              let f = a.(i).(c) in
              for j = 0 to cols do
                a.(i).(j) <- Q.sub a.(i).(j) (Q.mul f a.(!r).(j))
              done
            end
          done;
          piv_of_col.(c) <- !r;
          incr r
        end
      end
    done;
    (* consistency: a zero row with non-zero rhs *)
    let inconsistent = ref false in
    for i = !r to rows - 1 do
      if not (Q.is_zero a.(i).(cols)) then inconsistent := true
    done;
    if !inconsistent then `None
    else if Array.exists (fun p -> p = -1) piv_of_col then `Many
    else
      `Unique
        (Array.init cols (fun c -> a.(piv_of_col.(c)).(cols)))
  end

let dot a b =
  let s = ref 0 in
  Array.iteri (fun i x -> s := !s + (x * b.(i))) a;
  !s

(* delta fits inside the domain box: two points p and p + delta can
   both lie in the box iff |delta_i| <= extent_i - 1 per dimension. *)
let realizable ext delta =
  let ok = ref true in
  Array.iteri
    (fun i d -> if abs d > snd ext.(i) - fst ext.(i) - 1 then ok := false)
    delta;
  !ok

let stack_pi pi m =
  match pi with None -> m | Some pi -> Array.append m [| pi |]

(* W-W of a single write edge with itself: collisions within a front
   are exactly the non-zero integer null vectors of [M; pi].  An empty
   null space proves injectivity per front; a realizable basis vector
   is a genuine race witness. *)
let self_ww g ext pi (e : Ir.edge) =
  let stacked = stack_pi pi e.Ir.e_access.Access_map.matrix in
  let ns = Linalg.null_space stacked in
  if Array.length ns = 0 then
    Proven "write map injective within every front (trivial null space)"
  else
    let witness = Array.to_list ns |> List.find_opt (realizable ext) in
    match witness with
    | Some v ->
        Race
          ( WW,
            Printf.sprintf
              "iterations %s apart lie in one front and write the same \
               cell of %s"
              (vec_to_string v)
              (Ir.buffer g e.Ir.e_buffer).Ir.buf_name )
    | None ->
        Unproven
          (Printf.sprintf
             "write '%s': null direction %s of [M;pi] exceeds the domain \
              box — cannot witness or refute"
             e.Ir.e_label
             (vec_to_string ns.(0)))

(* Two accesses of one buffer with equal matrices M and offsets o1, o2:
   a collision needs M d = o2 - o1 with pi . d = 0 (same front) and
   d <> 0.  A unique integral solution decides the question exactly —
   this is what proves the recurrent state read (offset -1 or +1 along
   the sequential dimension) race-free: its d has pi . d <> 0, i.e. the
   dependence is carried *across* fronts. *)
let equal_matrix_pair ext pi kind bufname m o1 o2 =
  let delta_rhs = Array.init (Array.length o1) (fun i -> o2.(i) - o1.(i)) in
  if Array.for_all (fun x -> x = 0) delta_rhs then
    (* same map: only d in null(M) collide, same argument as self W-W *)
    let stacked = stack_pi pi m in
    let ns = Linalg.null_space stacked in
    if Array.length ns = 0 then
      Proven "identical access maps, injective within every front"
    else if Array.exists (realizable ext) ns then
      Race
        ( kind,
          Printf.sprintf "same-front iterations share a cell of %s" bufname )
    else Unproven "identical maps with an unrealizably large null direction"
  else
    match solve_exact m delta_rhs with
    | `None -> Proven "offset difference unreachable by the access matrix"
    | `Many ->
        Unproven
          "offset difference reachable along a positive-dimensional \
           solution space"
    | `Unique qs ->
        if Array.exists (fun q -> not (Q.is_integral q)) qs then
          Proven "offset difference only reachable at fractional iterations"
        else
          let d = Array.map Q.to_int qs in
          let carried = match pi with None -> 0 | Some pi -> dot pi d in
          if carried <> 0 then
            Proven
              (Printf.sprintf
                 "dependence distance %s is carried across fronts \
                  (pi.d = %d)"
                 (vec_to_string d) carried)
          else if realizable ext d then
            Race
              ( kind,
                Printf.sprintf
                  "iterations %s apart lie in one front and touch the \
                   same cell of %s"
                  (vec_to_string d) bufname )
          else
            Proven
              (Printf.sprintf
                 "collision distance %s exceeds the domain box"
                 (vec_to_string d))

let algebraic_races g b ext pi writes reads =
  let region e = edge_region g b None e in
  let boxes_of e =
    let r = region e in
    (r.rg_lo, r.rg_hi)
  in
  let pair_verdict kind (e1 : Ir.edge) (e2 : Ir.edge) =
    if e1.Ir.e_buffer <> e2.Ir.e_buffer then
      Proven "distinct buffers"
    else if boxes_disjoint (boxes_of e1) (boxes_of e2) then
      Proven "disjoint footprint boxes"
    else
      let a1 = e1.Ir.e_access and a2 = e2.Ir.e_access in
      if a1.Access_map.matrix = a2.Access_map.matrix then
        equal_matrix_pair ext pi kind
          (Ir.buffer g e1.Ir.e_buffer).Ir.buf_name a1.Access_map.matrix
          a1.Access_map.offset a2.Access_map.offset
      else
        Unproven
          (Printf.sprintf
             "accesses '%s' and '%s' of %s have dissimilar matrices and \
              overlapping boxes"
             e1.Ir.e_label e2.Ir.e_label
             (Ir.buffer g e1.Ir.e_buffer).Ir.buf_name)
  in
  let verdicts = ref [] in
  (* every write against itself *)
  List.iter (fun w -> verdicts := self_ww g ext pi w :: !verdicts) writes;
  (* distinct write pairs *)
  let rec ww = function
    | [] -> ()
    | w :: rest ->
        List.iter (fun w' -> verdicts := pair_verdict WW w w' :: !verdicts) rest;
        ww rest
  in
  ww writes;
  (* read against every write of the same buffer *)
  List.iter
    (fun r ->
      List.iter
        (fun w ->
          if r.Ir.e_buffer = w.Ir.e_buffer then
            verdicts := pair_verdict RW r w :: !verdicts)
        writes)
    reads;
  let vs = List.rev !verdicts in
  match List.find_opt (function Race _ -> true | _ -> false) vs with
  | Some r -> r
  | None -> (
      match List.find_opt (function Unproven _ -> true | _ -> false) vs with
      | Some u -> u
      | None ->
          Proven
            "algebraic: write maps injective per front; every read/write \
             collision distance carried across fronts or out of range")

let block_race ?(threshold = default_threshold) (g : Ir.graph)
    (b : Ir.block) =
  let pi = hyperplane b in
  let edges = List.filter (edge_usable g b) (live_edges b) in
  let writes = List.filter (fun (e : Ir.edge) -> e.Ir.e_dir = Ir.Write) edges in
  let written_bufs = List.map (fun (e : Ir.edge) -> e.Ir.e_buffer) writes in
  let reads =
    List.filter
      (fun (e : Ir.edge) ->
        e.Ir.e_dir = Ir.Read && List.mem e.Ir.e_buffer written_bufs)
      edges
  in
  let points = domain_points ~threshold b.Ir.blk_domain in
  let rr_points =
    match points with
    | Some pts -> List.length pts
    | None -> Domain.card b.Ir.blk_domain
  in
  let rr_fronts = front_count pi b.Ir.blk_domain points in
  let verdict =
    if writes = [] then Proven "block writes nothing"
    else
      match points with
      | Some pts -> enumerate_races g pi pts writes reads
      | None -> (
          match Domain.rect_extents b.Ir.blk_domain with
          | Some ext -> algebraic_races g b ext pi writes reads
          | None ->
              Unproven
                (Printf.sprintf
                   "non-rectangular domain with more than %d points"
                   threshold))
  in
  { rr_block = b.Ir.blk_name; rr_points; rr_fronts; rr_verdict = verdict }

let race_check ?threshold (g : Ir.graph) =
  List.map (block_race ?threshold g) (Ir.dataflow_order g)

(* ------------------------------ flow checks ------------------------ *)

let never_read (g : Ir.graph) =
  List.filter_map
    (fun (bf : Ir.buffer) ->
      if bf.Ir.buf_role <> Ir.Intermediate then None
      else
        let touched dir =
          List.exists
            (fun (b : Ir.block) ->
              List.exists
                (fun (e : Ir.edge) ->
                  e.Ir.e_buffer = bf.Ir.buf_id && e.Ir.e_dir = dir
                  && (dir = Ir.Write
                     || not (List.mem_assoc e.Ir.e_label b.Ir.blk_consts)))
                b.Ir.blk_edges)
            g.Ir.g_blocks
        in
        if touched Ir.Write && not (touched Ir.Read) then Some bf.Ir.buf_name
        else None)
    g.Ir.g_buffers

let race_diagnostics ?stage ?threshold (g : Ir.graph) =
  let ctx b =
    match stage with Some s -> Some (s ^ ": " ^ b) | None -> Some b
  in
  List.filter_map
    (fun rr ->
      match rr.rr_verdict with
      | Proven _ -> None
      | Race (WW, m) ->
          Some
            (Diagnostic.errorf ?context:(ctx rr.rr_block) "V300"
               "wavefront write-write race: %s" m)
      | Race (RW, m) ->
          Some
            (Diagnostic.errorf ?context:(ctx rr.rr_block) "V301"
               "wavefront read-write race: %s" m)
      | Unproven m ->
          Some
            (Diagnostic.notef ?context:(ctx rr.rr_block) "V304"
               "wavefront disjointness unproven: %s" m))
    (race_check ?threshold g)

let flow_diagnostics ?stage (g : Ir.graph) =
  let ctx b =
    match stage with Some s -> Some (s ^ ": " ^ b) | None -> Some b
  in
  let dead =
    let nr = never_read g in
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (fun (e : Ir.edge) ->
            if e.Ir.e_dir = Ir.Write then
              match
                List.find_opt
                  (fun bf -> bf.Ir.buf_id = e.Ir.e_buffer)
                  g.Ir.g_buffers
              with
              | Some bf when List.mem bf.Ir.buf_name nr ->
                  Some
                    (Diagnostic.warningf ?context:(ctx b.Ir.blk_name) "V302"
                       "dead store: no block reads intermediate buffer %s"
                       bf.Ir.buf_name)
              | _ -> None
            else None)
          b.Ir.blk_edges)
      g.Ir.g_blocks
  in
  (* a read whose (clipped) footprint box lies outside the union
     bounding box of every writer of the buffer can only see
     uninitialized cells *)
  let uninit =
    List.concat_map
      (fun (b : Ir.block) ->
        let points = domain_points b.Ir.blk_domain in
        List.filter_map
          (fun (e : Ir.edge) ->
            if e.Ir.e_dir <> Ir.Read || not (edge_usable g b e) then None
            else if List.mem_assoc e.Ir.e_label b.Ir.blk_consts then None
            else
              let bf = Ir.buffer g e.Ir.e_buffer in
              if bf.Ir.buf_role = Ir.Input then None
              else
                let writers =
                  List.concat_map
                    (fun (wb : Ir.block) ->
                      List.filter_map
                        (fun (w : Ir.edge) ->
                          if
                            w.Ir.e_dir = Ir.Write
                            && w.Ir.e_buffer = bf.Ir.buf_id
                            && edge_usable g wb w
                          then
                            Some
                              (edge_region g wb
                                 (domain_points wb.Ir.blk_domain)
                                 w)
                          else None)
                        wb.Ir.blk_edges)
                    g.Ir.g_blocks
                in
                if writers = [] then
                  Some
                    (Diagnostic.warningf ?context:(ctx b.Ir.blk_name) "V303"
                       "read of buffer %s, which no block writes"
                       bf.Ir.buf_name)
                else
                  let r = edge_region g b points e in
                  let m = Array.length r.rg_lo in
                  let wlo = Array.make m max_int
                  and whi = Array.make m min_int in
                  List.iter
                    (fun w ->
                      Array.iteri
                        (fun i v -> wlo.(i) <- Stdlib.min wlo.(i) v)
                        w.rg_lo;
                      Array.iteri
                        (fun i v -> whi.(i) <- Stdlib.max whi.(i) v)
                        w.rg_hi)
                    writers;
                  if boxes_disjoint (r.rg_lo, r.rg_hi) (wlo, whi) then
                    Some
                      (Diagnostic.warningf ?context:(ctx b.Ir.blk_name) "V303"
                         "read of %s%s..%s lies outside everything written \
                          to it (%s..%s)"
                         bf.Ir.buf_name (vec_to_string r.rg_lo)
                         (vec_to_string r.rg_hi) (vec_to_string wlo)
                         (vec_to_string whi))
                  else None)
          b.Ir.blk_edges)
      g.Ir.g_blocks
  in
  dead @ uninit

let diagnostics ?stage ?threshold (g : Ir.graph) =
  race_diagnostics ?stage ?threshold g @ flow_diagnostics ?stage g
