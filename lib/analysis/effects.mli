(** Static memory-effect analysis: per-block read/write footprints and
    wavefront race proofs (V3xx).

    The wavefront executor runs every anti-chain of a block's iteration
    domain in parallel, which is only legal when the points of one
    front touch pairwise-disjoint buffer cells.  Until now that
    disjointness was an unchecked assumption; this module makes it a
    static verdict, per block:

    - {b footprints}: the image of every (live) access map over the
      block's iteration domain, as an axis-aligned box in buffer space
      with may/must precision — the memory-effect summary a cost model
      or an arena allocator can consume;
    - {b race proofs}: for the exact anti-chains {!Vm}'s scheduler
      forms (the hyperplane [π = first row of Reorder.transform_matrix],
      one front per hyperplane value), pairwise W-W and R-W
      disjointness is decided {e exactly} by enumeration on small
      domains and by null-space / unique-solution arguments on large
      rectangular ones.  Beyond both, the verdict degrades to
      [Unproven] — conservative, never silent;
    - {b flow checks}: dead stores (an intermediate buffer no block
      ever reads) and reads whose footprint a buffer's writers cannot
      have covered, along the block dataflow order.

    Edges whose label is bound in [blk_consts] are dead at run time
    (the VM resolves the operand to the literal first) and are excluded
    throughout, mirroring execution. *)

type precision =
  | Must  (** the box is exactly the set of touched cells *)
  | May   (** the box over-approximates the touched cells *)

type region = {
  rg_buffer : int;        (** buffer id *)
  rg_name : string;       (** buffer name *)
  rg_write : bool;
  rg_label : string;      (** the edge's source-level label *)
  rg_lo : int array;      (** inclusive lower corner, buffer coords *)
  rg_hi : int array;      (** inclusive upper corner *)
  rg_precision : precision;
}

type footprint = {
  fp_block : string;
  fp_points : int;        (** iteration-domain cardinality *)
  fp_reads : region list;
  fp_writes : region list;
}

val block_footprint : Ir.graph -> Ir.block -> footprint
val footprints : Ir.graph -> footprint list
(** Top-level blocks, dataflow order. *)

val region_cells : region -> int
(** Volume of the region's box. *)

val subrange_region :
  Ir.graph -> Ir.block -> ext:(int * int) array -> Ir.edge -> region
(** Footprint of one edge over the sub-box [ext] of the block's
    iteration space ([(lo, hi-exclusive)] per axis) — the halo-aware
    per-device footprint the distributed partitioner ([lib/dist])
    checks: a device's shard box, widened by its declared halo for read
    edges, goes in; the buffer-space box the device touches comes out.
    [Must] precision means the box is exact (partial-permutation map,
    unclipped), so must-level overlap between two devices' write
    regions refutes a shard plan rather than merely failing to prove
    it. *)

val regions_disjoint : region -> region -> bool
(** Boxes touch different buffers or are separated on some axis.
    Conservative in the right direction: [false] only means the boxes
    {e may} overlap (exactly when both are [Must]). *)

type race_kind = WW | RW

type verdict =
  | Proven of string    (** all fronts pairwise disjoint; the proof *)
  | Unproven of string  (** could not decide cheaply; the obstacle *)
  | Race of race_kind * string  (** a genuine same-front conflict *)

val verdict_name : verdict -> string
(** ["proven-disjoint"], ["unproven"] or ["race"]. *)

type race_report = {
  rr_block : string;
  rr_points : int;
  rr_fronts : int;   (** anti-chains the hyperplane forms (0 = unknown) *)
  rr_verdict : verdict;
}

val default_threshold : int
(** Enumeration bound (points), {!Verify}'s small-volume budget. *)

val block_race : ?threshold:int -> Ir.graph -> Ir.block -> race_report
(** Decide same-front disjointness for one block's wavefront schedule
    (exactly the fronts {!Vm} executes in [Wavefront] order). *)

val race_check : ?threshold:int -> Ir.graph -> race_report list
(** {!block_race} over the top-level blocks in dataflow order. *)

val never_read : Ir.graph -> string list
(** Names of [Intermediate] buffers written by some top-level block but
    read by none — must-level dead stores; a dynamic read of one is a
    static/dynamic contradiction. *)

val race_diagnostics :
  ?stage:string -> ?threshold:int -> Ir.graph -> Diagnostic.t list
(** [Race] verdicts as errors (V300 write-write, V301 read-write),
    [Unproven] as notes (V304).  [Proven] is silent. *)

val flow_diagnostics : ?stage:string -> Ir.graph -> Diagnostic.t list
(** Dead stores (V302) and possibly-uninitialized reads (V303), as
    warnings. *)

val diagnostics :
  ?stage:string -> ?threshold:int -> Ir.graph -> Diagnostic.t list
(** {!race_diagnostics} followed by {!flow_diagnostics}. *)

val buffer_bytes : Ir.buffer -> int
(** Allocation size under the 4-byte/f32 convention the plan emitter
    uses: [4 * numel buf_dims * numel buf_elem]. *)
