(** Distributed execution front door.

    [run] partitions the graph ({!Shard.partition}), statically
    verifies the plan ({!Shard.verify} — an illegal plan raises
    {!Illegal_plan} rather than executing), executes it functionally on
    real OCaml domains with explicit transfers ({!Dist_exec.run}), and
    prices the {e same} event log on the multi-device interconnect
    model ({!Engine.dist_run}) — so the simulated scaling curve and the
    bitwise-checked values come from one run, not two stories.

    Pricing: each front becomes per-device kernels, the block's plan
    specs scaled by the fraction of points the device ran
    ({!Plan.scale}), resolved against a {e per-device} L2 residency
    model; after a (block, device) pair's first front its kernels are
    launch-free (a persistent shard kernel fed by the exchanges).
    Transfers pay the link's latency + bytes/bandwidth cost at a
    rendezvous of both endpoints' cursors. *)

exception Illegal_plan of Diagnostic.t list
(** Raised by {!run} when {!Shard.verify} finds an error-severity
    diagnostic (D400 write overlap / D401 insufficient halo). *)

type report = {
  rp_devices : int;
  rp_strategy : string;  (** ["auto"] or the forced strategy name *)
  rp_link : Device.link;
  rp_plan : Shard.plan;
  rp_diags : Diagnostic.t list;  (** note-level findings of a legal plan *)
  rp_outputs : (string * Fractal.t) list;
  rp_log : Dist_exec.log;
  rp_xfers : int;          (** total transfers, scatter/gather included *)
  rp_xfer_gb : float;
  rp_device_xfers : int;   (** device↔device only: halo / pipeline traffic *)
  rp_sim : Engine.dist_metrics;
}

val run :
  ?strategy:Shard.strategy ->
  ?link:Device.link ->
  ?device:Device.t ->
  devices:int ->
  Ir.graph ->
  (string * Fractal.t) list ->
  report
(** Partition, verify, execute, price.  Defaults: auto strategy,
    {!Device.nvlink}, {!Device.a100}.
    @raise Illegal_plan on a statically refuted plan
    @raise Vm.Execution_error on the executor's failure conditions *)

val differential :
  ?strategy:Shard.strategy ->
  ?link:Device.link ->
  ?device:Device.t ->
  devices:int ->
  Ir.graph ->
  (string * Fractal.t) list ->
  report * bool
(** [run] plus a bitwise comparison ({!Fractal.equal_exact}) of every
    output against the single-device {!Executor.run} — the sharded
    differential. *)

val sharded_outputs :
  ?pool:Domain_pool.t ->
  devices:int ->
  Ir.graph ->
  (string * Fractal.t) list ->
  (string * Fractal.t) list
(** Auto-partitioned functional execution only (no verification gate,
    no pricing): the conformance oracle entry point — raw VM-shaped
    outputs for {!Conform.check}'s bitwise comparison. *)

val simulate :
  ?link:Device.link ->
  ?device:Device.t ->
  Ir.graph ->
  Dist_exec.log ->
  Engine.dist_metrics
(** Price an execution log on the interconnect model (see module
    doc). *)

val bitwise_equal :
  (string * Fractal.t) list -> (string * Fractal.t) list -> bool
(** Same names, every output {!Fractal.equal_exact}. *)

val pool : int -> Domain_pool.t
(** The shared pool for a device count (one domain per device), created
    on first use. *)

val reset_pools : unit -> unit
(** Shut down and drop every cached pool (test isolation / serving
    teardown). *)
