(* Front door for distributed execution: partition, verify, execute on
   real domains, then price the very same run on the multi-device
   simulator. *)

exception Illegal_plan of Diagnostic.t list

type report = {
  rp_devices : int;
  rp_strategy : string;  (* "auto" or the forced strategy *)
  rp_link : Device.link;
  rp_plan : Shard.plan;
  rp_diags : Diagnostic.t list;  (* notes survive on a legal plan *)
  rp_outputs : (string * Fractal.t) list;
  rp_log : Dist_exec.log;
  rp_xfers : int;
  rp_xfer_gb : float;
  rp_device_xfers : int;  (* halo / pipeline traffic, endpoints on devices *)
  rp_sim : Engine.dist_metrics;
}

(* One pool per device count, shared across runs (domain spawn is the
   expensive part) — same shape as Executor's explicit-domains cache. *)
let pools : (int, Domain_pool.t) Hashtbl.t = Hashtbl.create 4
let pools_mu = Mutex.create ()

let pool devices =
  Mutex.lock pools_mu;
  let p =
    match Hashtbl.find_opt pools devices with
    | Some p -> p
    | None ->
        let p = Domain_pool.create ~domains:devices in
        Hashtbl.replace pools devices p;
        p
  in
  Mutex.unlock pools_mu;
  p

let reset_pools () =
  Mutex.lock pools_mu;
  Hashtbl.iter (fun _ p -> Domain_pool.shutdown p) pools;
  Hashtbl.reset pools;
  Mutex.unlock pools_mu

(* ------------------------------ pricing ------------------------------ *)

(* Replay the execution log on the interconnect model: each E_front
   becomes per-device kernels — the block's plan specs scaled by the
   fraction of iteration points the device ran in that front — resolved
   against that device's own L2 residency; each E_xfer becomes a
   rendezvous transfer.  After a (block, device) pair's first front its
   kernels go launch-free: the shard runs as a persistent kernel fed by
   the exchanges. *)
let simulate ?(link = Device.nvlink) ?(device = Device.a100) (g : Ir.graph)
    (log : Dist_exec.log) =
  let ndev = log.Dist_exec.lg_devices in
  let topo = Device.topology ~link device ndev in
  let caches =
    Array.init ndev (fun _ ->
        Exec.Cache.create (float_of_int device.Device.l2_bytes))
  in
  let blocks =
    List.map (fun (b : Ir.block) -> (b.Ir.blk_name, b)) (Ir.dataflow_order g)
  in
  let plans : (string, Plan.kernel_spec list * int) Hashtbl.t =
    Hashtbl.create 8
  in
  let block_plan name =
    match Hashtbl.find_opt plans name with
    | Some sp -> sp
    | None ->
        let b = List.assoc name blocks in
        let sp = (Emit.block_plan g b, Domain.card b.Ir.blk_domain) in
        Hashtbl.replace plans name sp;
        sp
  in
  let launched : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let events =
    List.concat_map
      (fun ev ->
        match ev with
        | Dist_exec.E_xfer x ->
            [
              Engine.D_xfer
                {
                  dx_src = x.Dist_exec.x_src;
                  dx_dst = x.Dist_exec.x_dst;
                  dx_bytes = x.Dist_exec.x_bytes;
                  dx_label = x.Dist_exec.x_label;
                };
            ]
        | Dist_exec.E_front { ef_block; ef_points } ->
            let specs, total = block_plan ef_block in
            let out = ref [] in
            Array.iteri
              (fun d pts ->
                if pts > 0 then begin
                  let frac =
                    if total <= 0 then 1.0
                    else float_of_int pts /. float_of_int total
                  in
                  let free = Hashtbl.mem launched (ef_block, d) in
                  Hashtbl.replace launched (ef_block, d) ();
                  List.iter
                    (fun ks ->
                      let ks = Plan.scale frac ks in
                      let ks =
                        if free then { ks with Plan.ks_launch_free = true }
                        else ks
                      in
                      out :=
                        Engine.D_compute
                          (d, Exec.resolve_kernel device caches.(d) ks)
                        :: !out)
                    specs
                end)
              ef_points;
            List.rev !out)
      log.Dist_exec.lg_events
  in
  Engine.dist_run topo events

(* ------------------------------- runs -------------------------------- *)

let run ?strategy ?(link = Device.nvlink) ?(device = Device.a100) ~devices g
    inputs =
  let plan = Shard.partition ?strategy ~devices g in
  let diags = Shard.verify g plan in
  if not (Shard.legal diags) then raise (Illegal_plan diags);
  let outputs, log = Dist_exec.run ~pool:(pool devices) ~plan g inputs in
  let xfers, bytes = Dist_exec.xfer_totals log in
  {
    rp_devices = devices;
    rp_strategy =
      (match strategy with
      | None -> "auto"
      | Some s -> Shard.strategy_name s);
    rp_link = link;
    rp_plan = plan;
    rp_diags = diags;
    rp_outputs = outputs;
    rp_log = log;
    rp_xfers = xfers;
    rp_xfer_gb = bytes /. 1e9;
    rp_device_xfers = Dist_exec.device_xfers log;
    rp_sim = simulate ~link ~device g log;
  }

let sharded_outputs ?pool:p ~devices g inputs =
  let plan = Shard.partition ~devices g in
  fst (Dist_exec.run ?pool:p ~plan g inputs)

let bitwise_equal a b =
  List.length a = List.length b
  && List.for_all
       (fun (name, v) ->
         match List.assoc_opt name b with
         | Some w -> Fractal.equal_exact v w
         | None -> false)
       a

let differential ?strategy ?link ?device ~devices g inputs =
  let rep = run ?strategy ?link ?device ~devices g inputs in
  let base = Executor.run g inputs in
  (rep, bitwise_equal rep.rp_outputs base)
