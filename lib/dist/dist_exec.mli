(** Functional distributed execution: a shard plan, executed for real
    on OCaml domains — one per simulated device — with explicit
    transfers.

    Every device owns a private cell store (plus one for the host,
    holding inputs and gathering outputs).  Before each wavefront front
    (or same-owner sequential segment) runs, the coordinator pulls
    every cell the front reads but its owner does not hold from the
    cell's {e home} — the device that wrote it, or the host for inputs
    — as a bit-exact blit, logged as one transfer per
    (src, dst, buffer) per phase.  Halo exchange therefore emerges from
    the access maps.  Compute within a front fans the per-device shards
    out across a {!Domain_pool}; each shard touches only its own
    device's store.

    Values are bitwise identical to {!Vm} by construction (same
    schedules, same {!Interp.eval_prim}, copies are blits); the home
    table additionally fails the run on any cross-shard double write —
    the dynamic counterpart of {!Shard.verify}.  The race guard mirrors
    {!Vm}: blocks without a [Proven] same-front disjointness verdict
    downgrade to sequential order (reported via {!Vm.report_fallback}
    and returned in the log).

    Raises {!Vm.Execution_error} on the same conditions as {!Vm}. *)

val host : int
(** The host endpoint in transfer events ([-1]). *)

type xfer = {
  x_src : int;  (** source device, or {!host} *)
  x_dst : int;
  x_bytes : float;  (** 4-byte/f32 convention *)
  x_cells : int;    (** cells moved in this (aggregated) transfer *)
  x_label : string; (** buffer name *)
}

type event =
  | E_xfer of xfer
  | E_front of {
      ef_block : string;
      ef_points : int array;  (** points executed per device *)
    }

type log = {
  lg_devices : int;
  lg_events : event list;  (** program order *)
  lg_fallbacks : (string * string) list;  (** (block, reason) downgrades *)
}

val run :
  ?pool:Domain_pool.t ->
  plan:Shard.plan ->
  Ir.graph ->
  (string * Fractal.t) list ->
  (string * Fractal.t) list * log
(** Execute the graph under the shard plan.  Outputs are in buffer
    order, exactly as {!Vm.run} returns them.  Without a pool the
    per-device shards of a front run on the coordinator (still
    sharded, still transferred — just not concurrent). *)

val xfer_totals : log -> int * float
(** (transfer count, total bytes) over the whole run. *)

val device_xfers : log -> int
(** Transfers with both endpoints on devices — halo-exchange and
    pipeline traffic, excluding input scatter and output gather. *)
