(* Functional distributed execution of a compiled ETDG.

   The single-device {!Vm} owns one cell store per buffer; here every
   simulated device owns a {e private} store (plus one for the host,
   which holds program inputs and gathers outputs), and shards of a
   block's iteration domain execute on real OCaml domains — one domain
   per device — reading and writing only their own device's store.

   Data movement is pull-based and explicit: before a front (or a
   sequential same-owner segment) runs, the coordinator walks the read
   access maps of its points and blits every cell a device needs but
   does not hold from the cell's {e home} device (the device that wrote
   it; the host for inputs), recording one transfer event per
   (src, dst, buffer) triple per phase — the halo exchange emerges from
   the access maps rather than being hand-declared.  Because a blit is
   a bit-exact tensor copy and every point evaluates through the same
   {!Interp.eval_prim} on the same operand values as {!Vm}, the
   distributed run is bitwise identical to the single-device one by
   construction — which the differential suite then checks rather than
   assumes.

   The home table doubles as a dynamic shard-legality monitor: two
   devices (or two fronts) writing the same cell collide in the table
   and fail the run, the runtime counterpart of {!Shard.verify}'s
   static write-disjointness proof. *)

let host = -1

type xfer = {
  x_src : int;  (* device, or [host] *)
  x_dst : int;
  x_bytes : float;
  x_cells : int;
  x_label : string;  (* buffer name *)
}

type event =
  | E_xfer of xfer
  | E_front of { ef_block : string; ef_points : int array (* per device *) }

type log = {
  lg_devices : int;
  lg_events : event list;  (* program order *)
  lg_fallbacks : (string * string) list;  (* block, reason *)
}

let err fmt = Format.kasprintf (fun s -> raise (Vm.Execution_error s)) fmt

(* Same storage layout as Vm: row-major cells, strides precomputed. *)
type storage = {
  st_dims : int array;
  st_strides : int array;
  st_cells : Tensor.t option array;
}

let strides dims =
  let n = Array.length dims in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * dims.(i + 1)
  done;
  st

let ravel st idx =
  let off = ref 0 in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= st.st_dims.(i) then
        err "buffer index %d out of extent %d (axis %d)" v st.st_dims.(i) i;
      off := !off + (v * st.st_strides.(i)))
    idx;
  !off

let alloc dims =
  {
    st_dims = dims;
    st_strides = strides dims;
    st_cells = Array.make (Stdlib.max 1 (Array.fold_left ( * ) 1 dims)) None;
  }

let load st value =
  let pos = ref 0 in
  let rec go depth v =
    match v with
    | Fractal.Leaf t ->
        if depth <> Array.length st.st_dims then
          err "input nesting depth does not match the buffer rank";
        st.st_cells.(!pos) <- Some t;
        incr pos
    | Fractal.Node elems ->
        if depth >= Array.length st.st_dims then
          err "input nesting exceeds the buffer rank";
        if Array.length elems <> st.st_dims.(depth) then
          err "input extent %d differs from buffer extent %d"
            (Array.length elems) st.st_dims.(depth);
        Array.iter (go (depth + 1)) elems
  in
  go 0 value

let unload name st =
  let pos = ref 0 in
  let rec go depth =
    if depth = Array.length st.st_dims then begin
      match st.st_cells.(!pos) with
      | Some t ->
          incr pos;
          Fractal.Leaf t
      | None -> err "output buffer %s has an unwritten cell" name
    end
    else Fractal.Node (Array.init st.st_dims.(depth) (fun _ -> go (depth + 1)))
  in
  go 0

(* 4-byte/f32 convention, matching Effects.buffer_bytes and the plan
   emitter. *)
let cell_bytes t = 4.0 *. float_of_int (Tensor.numel t)

let blit t =
  let dst = Tensor.uninit (Tensor.shape t) in
  Tensor.copy_into t ~dst;
  dst

let run ?pool ~(plan : Shard.plan) (g : Ir.graph) inputs =
  let ndev = plan.Shard.pl_devices in
  (* stores.(d) is device d's private memory; one more for the host *)
  let stores = Array.init ndev (fun _ -> Hashtbl.create 16) in
  let host_store = Hashtbl.create 16 in
  let store_of d = if d = host then host_store else stores.(d) in
  let storage d buf = Hashtbl.find (store_of d) buf in
  (* (buffer, cell offset) -> device that produced the cell *)
  let home : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let events = ref [] in
  let emit e = events := e :: !events in
  let fallbacks = ref [] in
  List.iter
    (fun (bf : Ir.buffer) ->
      (match bf.Ir.buf_role with
      | Ir.Input -> (
          let st = alloc bf.Ir.buf_dims in
          (match List.assoc_opt bf.Ir.buf_name inputs with
          | Some v -> load st v
          | None -> err "missing input %s" bf.Ir.buf_name);
          Array.iteri
            (fun off c ->
              if c <> None then Hashtbl.replace home (bf.Ir.buf_id, off) host)
            st.st_cells;
          Hashtbl.replace host_store bf.Ir.buf_id st)
      | Ir.Intermediate | Ir.Output ->
          Hashtbl.replace host_store bf.Ir.buf_id (alloc bf.Ir.buf_dims));
      Array.iter
        (fun s -> Hashtbl.replace s bf.Ir.buf_id (alloc bf.Ir.buf_dims))
        stores)
    g.Ir.g_buffers;
  let exec_block (b : Ir.block) =
    let sh = Shard.block_shard plan b.Ir.blk_name in
    let owner p = Shard.owner sh p in
    let reads = Hashtbl.create 8 in
    List.iter
      (fun (e : Ir.edge) ->
        if e.Ir.e_dir = Ir.Read then Hashtbl.replace reads e.Ir.e_label e)
      b.Ir.blk_edges;
    let writes = Ir.writes b in
    if List.length writes <> List.length b.Ir.blk_results then
      err "block %s: %d write edges for %d results" b.Ir.blk_name
        (List.length writes)
        (List.length b.Ir.blk_results);
    (* Read edges an operand actually consumes: a label bound in
       blk_consts resolves to the literal and its edge is dead, exactly
       as in Vm's operand resolution — prefetching a dead edge would
       demand cells no execution ever reads. *)
    let used = Hashtbl.create 8 in
    let use = function
      | Ir.O_var tag ->
          if not (List.mem_assoc tag b.Ir.blk_consts) then
            Hashtbl.replace used tag ()
      | Ir.O_op _ | Ir.O_const _ -> ()
    in
    List.iter (fun (o : Ir.op_node) -> List.iter use o.Ir.operands) b.Ir.blk_body;
    List.iter use b.Ir.blk_results;
    let live_reads =
      Hashtbl.fold
        (fun tag e acc -> if Hashtbl.mem used tag then e :: acc else acc)
        reads []
    in
    let read_cell d point (e : Ir.edge) =
      let st = storage d e.Ir.e_buffer in
      if Access_map.out_dim e.Ir.e_access <> Array.length st.st_dims then
        err "block %s: partial read of buffer %d is not executable"
          b.Ir.blk_name e.Ir.e_buffer;
      let idx = Access_map.apply e.Ir.e_access point in
      match st.st_cells.(ravel st idx) with
      | Some t -> t
      | None ->
          err "block %s reads an unwritten cell of buffer %d — illegal order"
            b.Ir.blk_name e.Ir.e_buffer
    in
    (* One iteration point on device [d]: reads and writes touch only
       [d]'s store, which is what makes the per-device fan-out safe. *)
    let exec_point d point =
      let results = Array.make (List.length b.Ir.blk_body) (Tensor.scalar 0.) in
      let operand point = function
        | Ir.O_const t -> t
        | Ir.O_op k -> results.(k)
        | Ir.O_var tag -> (
            match List.assoc_opt tag b.Ir.blk_consts with
            | Some t -> t
            | None -> (
                match Hashtbl.find_opt reads tag with
                | Some e -> read_cell d point e
                | None ->
                    err "block %s: operand %s has no edge or literal"
                      b.Ir.blk_name tag))
      in
      List.iteri
        (fun i (o : Ir.op_node) ->
          results.(i) <-
            Interp.eval_prim o.Ir.op (List.map (operand point) o.Ir.operands))
        b.Ir.blk_body;
      List.iter2
        (fun (w : Ir.edge) result ->
          let st = storage d w.Ir.e_buffer in
          let idx = Access_map.apply w.Ir.e_access point in
          let off = ravel st idx in
          (match st.st_cells.(off) with
          | Some _ ->
              err "block %s writes a cell twice — single assignment violated"
                b.Ir.blk_name
          | None -> ());
          st.st_cells.(off) <- Some (operand point result))
        writes b.Ir.blk_results
    in
    (* Coordinator: make every cell the points will read present on
       their owner devices, blitting from each cell's home.  A cell
       with no home yet may still be produced locally later in the
       segment (a scan's own trail); if it never is, exec_point raises
       the same illegal-order error Vm would. *)
    let fetch pts =
      let pending : (int * int * string, float ref * int ref) Hashtbl.t =
        Hashtbl.create 16
      in
      Array.iter
        (fun p ->
          let d = owner p in
          List.iter
            (fun (e : Ir.edge) ->
              let st = storage d e.Ir.e_buffer in
              if Access_map.out_dim e.Ir.e_access = Array.length st.st_dims
              then begin
                let off = ravel st (Access_map.apply e.Ir.e_access p) in
                if st.st_cells.(off) = None then
                  match Hashtbl.find_opt home (e.Ir.e_buffer, off) with
                  | None -> ()
                  | Some h when h = d -> ()
                  | Some h -> (
                      let src = storage h e.Ir.e_buffer in
                      match src.st_cells.(off) with
                      | None -> ()
                      | Some t ->
                          st.st_cells.(off) <- Some (blit t);
                          let name = (Ir.buffer g e.Ir.e_buffer).Ir.buf_name in
                          let key = (h, d, name) in
                          let bytes, cells =
                            match Hashtbl.find_opt pending key with
                            | Some bc -> bc
                            | None ->
                                let bc = (ref 0.0, ref 0) in
                                Hashtbl.add pending key bc;
                                bc
                          in
                          bytes := !bytes +. cell_bytes t;
                          incr cells)
              end)
            live_reads)
        pts;
      Hashtbl.fold (fun k bc acc -> (k, bc) :: acc) pending []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun ((src, dst, name), (bytes, cells)) ->
             emit
               (E_xfer
                  {
                    x_src = src;
                    x_dst = dst;
                    x_bytes = !bytes;
                    x_cells = !cells;
                    x_label = name;
                  }))
    in
    (* Coordinator, after a front/segment: record who produced each
       written cell.  A collision is a cross-shard double write — the
       dynamic refutation of an illegal plan (same-device double writes
       already failed inside exec_point). *)
    let record_homes pts =
      Array.iter
        (fun p ->
          let d = owner p in
          List.iter
            (fun (w : Ir.edge) ->
              let st = storage d w.Ir.e_buffer in
              let off = ravel st (Access_map.apply w.Ir.e_access p) in
              let key = (w.Ir.e_buffer, off) in
              if Hashtbl.mem home key then
                err
                  "block %s writes a cell of buffer %d on two shards — \
                   shard plan is illegal"
                  b.Ir.blk_name w.Ir.e_buffer
              else Hashtbl.replace home key d)
            writes)
        pts
    in
    let points_per_dev pts =
      let counts = Array.make ndev 0 in
      Array.iter (fun p -> counts.(owner p) <- counts.(owner p) + 1) pts;
      counts
    in
    (* Race guard, mirroring Vm: anti-chains only run as fronts when
       same-front disjointness is statically Proven (a per-device
       partition of a proven front is a subset family, still disjoint);
       otherwise the block downgrades to the sequential order. *)
    let points = Domain.enumerate b.Ir.blk_domain in
    let sched =
      match Vm.schedule Vm.Wavefront b points with
      | Vm.Fronts _ as s -> (
          match (Effects.block_race g b).Effects.rr_verdict with
          | Effects.Proven _ -> s
          | Effects.Unproven m ->
              let reason = "same-front disjointness unproven: " ^ m in
              fallbacks := (b.Ir.blk_name, reason) :: !fallbacks;
              Vm.report_fallback b.Ir.blk_name reason;
              Vm.schedule Vm.Sequential b points
          | Effects.Race (_, m) ->
              let reason = "statically-proven race: " ^ m in
              fallbacks := (b.Ir.blk_name, reason) :: !fallbacks;
              Vm.report_fallback b.Ir.blk_name reason;
              Vm.schedule Vm.Sequential b points)
      | s -> s
    in
    match sched with
    | Vm.Ordered ps ->
        (* Sequential order: maximal same-owner runs, executed in turn
           on the coordinator; transfers happen at run boundaries, the
           point where a scan's trail crosses a shard boundary. *)
        let rec segments = function
          | [] -> []
          | p :: _ as ps ->
              let d = owner p in
              let rec split acc = function
                | q :: rest when owner q = d -> split (q :: acc) rest
                | rest -> (Array.of_list (List.rev acc), rest)
              in
              let seg, rest = split [] ps in
              (d, seg) :: segments rest
        in
        List.iter
          (fun (d, seg) ->
            fetch seg;
            Array.iter (exec_point d) seg;
            record_homes seg;
            emit
              (E_front
                 { ef_block = b.Ir.blk_name; ef_points = points_per_dev seg }))
          (segments ps)
    | Vm.Fronts fronts ->
        List.iter
          (fun (_, pts) ->
            fetch pts;
            let per_dev = Array.make ndev [] in
            Array.iter
              (fun p ->
                let d = owner p in
                per_dev.(d) <- p :: per_dev.(d))
              pts;
            let shards = Array.map (fun l -> Array.of_list (List.rev l)) per_dev in
            (* one OCaml domain per device; each device walks only its
               own shard of the front, against its own store *)
            (match pool with
            | Some pl when Array.length pts > 1 && ndev > 1 ->
                Domain_pool.parallel_for ~chunk:1 pl ~lo:0 ~hi:ndev (fun d ->
                    Array.iter (exec_point d) shards.(d))
            | _ -> Array.iteri (fun d s -> Array.iter (exec_point d) s) shards);
            record_homes pts;
            emit
              (E_front
                 { ef_block = b.Ir.blk_name; ef_points = points_per_dev pts }))
          fronts
  in
  List.iter exec_block (Ir.dataflow_order g);
  (* Gather: blit every output cell from its home device back to the
     host, one transfer per (device, buffer). *)
  let outputs =
    List.filter_map
      (fun (bf : Ir.buffer) ->
        if bf.Ir.buf_role <> Ir.Output then None
        else begin
          let hst = Hashtbl.find host_store bf.Ir.buf_id in
          let per_src : (int, float ref * int ref) Hashtbl.t =
            Hashtbl.create 4
          in
          Array.iteri
            (fun off _ ->
              match Hashtbl.find_opt home (bf.Ir.buf_id, off) with
              | None | Some (-1) -> ()
              | Some h -> (
                  let src = storage h bf.Ir.buf_id in
                  match src.st_cells.(off) with
                  | None -> ()
                  | Some t ->
                      hst.st_cells.(off) <- Some (blit t);
                      let bytes, cells =
                        match Hashtbl.find_opt per_src h with
                        | Some bc -> bc
                        | None ->
                            let bc = (ref 0.0, ref 0) in
                            Hashtbl.add per_src h bc;
                            bc
                      in
                      bytes := !bytes +. cell_bytes t;
                      incr cells))
            hst.st_cells;
          Hashtbl.fold (fun k bc acc -> (k, bc) :: acc) per_src []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.iter (fun (src, (bytes, cells)) ->
                 emit
                   (E_xfer
                      {
                        x_src = src;
                        x_dst = host;
                        x_bytes = !bytes;
                        x_cells = !cells;
                        x_label = bf.Ir.buf_name;
                      }));
          Some (bf.Ir.buf_name, unload bf.Ir.buf_name hst)
        end)
      g.Ir.g_buffers
  in
  ( outputs,
    {
      lg_devices = ndev;
      lg_events = List.rev !events;
      lg_fallbacks = List.rev !fallbacks;
    } )

let xfer_totals log =
  List.fold_left
    (fun (n, bytes) e ->
      match e with
      | E_xfer x -> (n + 1, bytes +. x.x_bytes)
      | E_front _ -> (n, bytes))
    (0, 0.0) log.lg_events

let device_xfers log =
  (* transfers with both endpoints on devices: the halo-exchange and
     pipeline traffic, as opposed to input scatter / output gather *)
  List.filter
    (function
      | E_xfer x -> x.x_src <> host && x.x_dst <> host
      | E_front _ -> false)
    log.lg_events
  |> List.length
