(** Shard plans: partitioning the coarsened ETDG across N simulated
    devices.

    Each top-level block gets a strategy.  The axis-sharded strategies
    split one iteration-domain axis into contiguous per-device chunks:

    - [Batch] takes a {e free} axis (every dependence distance vector
      is zero there) — pure data parallelism;
    - [Sequence] takes a dependence-carrying axis and declares a read
      halo wide enough to cover the largest dependence distance along
      it — the halo-exchange pattern of sequence-parallel scans;
    - [Pipeline] pins whole blocks to devices round-robin in dataflow
      order — depth pipelining over stacked layers;
    - [Replicate] keeps a block whole on one device — the always-legal
      fallback ([partition] never fails).

    {!verify} decides legality statically: per-device {e write}
    footprints (via {!Effects.subrange_region}) must be pairwise
    disjoint at must-precision, declared halos must cover every
    dependence distance on the sharded axis, and the wavefront race
    verdict must be [Proven] for cross-device fronts to run as
    anti-chains (a per-device partition of a proven-disjoint front is a
    subset family, hence still disjoint).  Codes: D400 write overlap
    (error), D401 insufficient halo (error), D402 unproven disjointness
    (note), D403 sequential-order downgrade (note). *)

type strategy = Batch | Sequence | Pipeline | Replicate

val strategy_name : strategy -> string
val strategy_of_name : string -> strategy option

type block_shard = {
  sh_block : string;
  sh_strategy : strategy;
  sh_axis : int;  (** sharded iteration axis; [-1] when not axis-sharded *)
  sh_lo : int;    (** axis lower bound, inclusive *)
  sh_hi : int;    (** axis upper bound, exclusive *)
  sh_chunk : int; (** axis points per device (last device may get fewer) *)
  sh_halo : int;  (** read halo along [sh_axis] ([Sequence] only) *)
  sh_pin : int;   (** owning device when not axis-sharded *)
  sh_devices : int;
}

val owner : block_shard -> int array -> int
(** Device owning iteration point [p]: contiguous chunks along
    [sh_axis], the pinned device otherwise. *)

type plan = {
  pl_devices : int;
  pl_forced : strategy option;  (** [None] = auto per block *)
  pl_blocks : (string * block_shard) list;  (** dataflow order *)
}

val block_shard : plan -> string -> block_shard
(** @raise Invalid_argument on an unknown block name. *)

val partition : ?strategy:strategy -> devices:int -> Ir.graph -> plan
(** Build a plan.  Auto mode prefers [Batch] (widest free axis), then
    [Sequence] (widest dependence-carrying axis, halo = max distance),
    then [Replicate]; forcing a strategy that does not apply to a block
    degrades that block to [Replicate] rather than failing.
    @raise Invalid_argument when [devices < 1]. *)

val device_ext :
  block_shard -> (int * int) array -> int -> widen:bool -> (int * int) array
(** The sub-box of iteration space device [d] owns, given the block's
    rectangular extents; [~widen:true] grows the sharded axis by the
    halo (read footprints only). *)

val active_devices : block_shard -> int
(** Devices whose chunk is non-empty (≤ [sh_devices]). *)

val verify : Ir.graph -> plan -> Diagnostic.t list
(** Static legality of the plan (see module doc for codes). *)

val legal : Diagnostic.t list -> bool
(** No error-severity findings. *)

val pp_shard : Format.formatter -> block_shard -> unit
