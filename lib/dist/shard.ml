(* Partitioning the coarsened ETDG across N simulated devices.

   A shard plan assigns every top-level block a strategy and, for the
   axis-sharded strategies, a contiguous chunk of one iteration-domain
   axis per device:

   - [Batch]: a free (dependence-carrying-nowhere) axis splits into
     equal chunks — pure data parallelism, no cross-device traffic
     beyond input scatter and output gather;
   - [Sequence]: the dependence-carrying axis splits; each device owns
     a contiguous span and reads a halo of [sh_halo] boundary cells
     produced by its neighbour — the halo-exchange pattern;
   - [Pipeline]: whole blocks pin to devices round-robin in dataflow
     order — depth pipelining across stacked layers;
   - [Replicate]: the degenerate plan (everything on device 0), the
     fallback when a block has nothing shardable.

   Legality is checked statically ([verify]): per-device write
   footprints (interval images of the shard boxes under the access
   maps, via {!Effects.subrange_region}) must be pairwise disjoint —
   halos widen only reads — and a declared halo must cover every
   dependence distance along the sharded axis. *)

type strategy = Batch | Sequence | Pipeline | Replicate

let strategy_name = function
  | Batch -> "batch"
  | Sequence -> "sequence"
  | Pipeline -> "pipeline"
  | Replicate -> "replicate"

let strategy_of_name = function
  | "batch" -> Some Batch
  | "sequence" -> Some Sequence
  | "pipeline" -> Some Pipeline
  | "replicate" -> Some Replicate
  | _ -> None

type block_shard = {
  sh_block : string;
  sh_strategy : strategy;
  sh_axis : int;  (* sharded iteration axis; -1 when not axis-sharded *)
  sh_lo : int;    (* axis lower bound, inclusive *)
  sh_hi : int;    (* axis upper bound, exclusive *)
  sh_chunk : int; (* axis points per device (last device may get less) *)
  sh_halo : int;  (* read halo along [sh_axis] (Sequence) *)
  sh_pin : int;   (* owning device when not axis-sharded *)
  sh_devices : int;
}

let owner sh (p : int array) =
  match sh.sh_strategy with
  | Replicate | Pipeline -> sh.sh_pin
  | Batch | Sequence ->
      if sh.sh_axis < 0 || sh.sh_axis >= Array.length p then sh.sh_pin
      else
        Stdlib.min (sh.sh_devices - 1)
          ((p.(sh.sh_axis) - sh.sh_lo) / sh.sh_chunk)

type plan = {
  pl_devices : int;
  pl_forced : strategy option;
  pl_blocks : (string * block_shard) list; (* top level, dataflow order *)
}

let block_shard plan name =
  match List.assoc_opt name plan.pl_blocks with
  | Some sh -> sh
  | None -> invalid_arg ("Shard.block_shard: unknown block " ^ name)

(* ----------------------------- partition ----------------------------- *)

(* Axis [i] carries no dependence iff every distance vector is zero
   there — the data-parallel axes the batch split may take. *)
let axis_free dvs i =
  List.for_all (fun d -> i >= Array.length d || d.(i) = 0) dvs

let replicate ~devices name pin =
  {
    sh_block = name;
    sh_strategy = Replicate;
    sh_axis = -1;
    sh_lo = 0;
    sh_hi = 0;
    sh_chunk = 1;
    sh_halo = 0;
    sh_pin = pin;
    sh_devices = devices;
  }

(* Widest qualifying axis; sharding a 1-extent axis buys nothing. *)
let pick_axis ext pred =
  let best = ref (-1) and best_n = ref 1 in
  Array.iteri
    (fun i (l, h) ->
      let n = h - l in
      if n > !best_n && pred i then begin
        best := i;
        best_n := n
      end)
    ext;
  if !best >= 0 then Some !best else None

let partition ?strategy ~devices (g : Ir.graph) =
  if devices < 1 then invalid_arg "Shard.partition: need at least one device";
  let blocks = Ir.dataflow_order g in
  let shard_of k (b : Ir.block) =
    let name = b.Ir.blk_name in
    let fallback = replicate ~devices name 0 in
    match Domain.rect_extents b.Ir.blk_domain with
    | None -> fallback (* non-rectangular domains stay whole *)
    | Some ext ->
        let dvs = Dependence.block_distance_vectors b in
        let axis_shard strat axis halo =
          let l, h = ext.(axis) in
          {
            sh_block = name;
            sh_strategy = strat;
            sh_axis = axis;
            sh_lo = l;
            sh_hi = h;
            sh_chunk = (h - l + devices - 1) / devices;
            sh_halo = halo;
            sh_pin = 0;
            sh_devices = devices;
          }
        in
        let batch () =
          Option.map
            (fun a -> axis_shard Batch a 0)
            (pick_axis ext (axis_free dvs))
        in
        let sequence () =
          Option.map
            (fun a ->
              let halo =
                List.fold_left
                  (fun acc d ->
                    if a < Array.length d then Stdlib.max acc (abs d.(a))
                    else acc)
                  1 dvs
              in
              axis_shard Sequence a halo)
            (pick_axis ext (fun a -> not (axis_free dvs a)))
        in
        let or_fallback = Option.value ~default:fallback in
        (match strategy with
        | Some Replicate -> fallback
        | Some Pipeline -> { fallback with sh_strategy = Pipeline; sh_pin = k mod devices }
        | Some Batch -> or_fallback (batch ())
        | Some Sequence -> or_fallback (sequence ())
        | None ->
            (* auto: data parallelism when an axis is free, halo-sharded
               sequence otherwise, replication as the last resort *)
            or_fallback
              (match batch () with Some s -> Some s | None -> sequence ()))
  in
  {
    pl_devices = devices;
    pl_forced = strategy;
    pl_blocks =
      List.mapi (fun k b -> (b.Ir.blk_name, shard_of k b)) blocks;
  }

(* ------------------------------ legality ----------------------------- *)

(* The sub-box of the iteration space device [d] owns, as the
   (lo, hi-exclusive) extents Effects.subrange_region consumes.
   [widen] grows the sharded axis by the halo — reads only. *)
let device_ext sh ext d ~widen =
  let sub = Array.copy ext in
  if sh.sh_axis >= 0 then begin
    let l = sh.sh_lo + (d * sh.sh_chunk) in
    let h = Stdlib.min sh.sh_hi (l + sh.sh_chunk) in
    let l, h =
      if widen then (l - sh.sh_halo, h + sh.sh_halo) else (l, h)
    in
    sub.(sh.sh_axis) <- (Stdlib.max sh.sh_lo l, Stdlib.min sh.sh_hi h)
  end;
  sub

(* Devices whose chunk is non-empty. *)
let active_devices sh =
  if sh.sh_axis < 0 then 1
  else
    Stdlib.min sh.sh_devices
      ((sh.sh_hi - sh.sh_lo + sh.sh_chunk - 1) / sh.sh_chunk)

let verify (g : Ir.graph) plan =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  List.iter
    (fun (b : Ir.block) ->
      let sh = block_shard plan b.Ir.blk_name in
      let ctx = b.Ir.blk_name in
      match (sh.sh_strategy, Domain.rect_extents b.Ir.blk_domain) with
      | (Replicate | Pipeline), _ | _, None -> ()
      | (Batch | Sequence), Some ext ->
          let ndev = active_devices sh in
          if ndev > 1 then begin
            (* A dependence distance along the sharded axis larger than
               the halo means a device reads cells its neighbour has
               not agreed to export. *)
            (let dvs = Dependence.block_distance_vectors b in
             let need =
               List.fold_left
                 (fun acc d ->
                   if sh.sh_axis < Array.length d then
                     Stdlib.max acc (abs d.(sh.sh_axis))
                   else acc)
                 0 dvs
             in
             if need > sh.sh_halo then
               push
                 (Diagnostic.errorf ~context:ctx "D401"
                    "%s halo %d on axis %d does not cover dependence \
                     distance %d"
                    (strategy_name sh.sh_strategy) sh.sh_halo sh.sh_axis
                    need));
            (* Per-device write footprints must be pairwise disjoint —
               halos never widen writes, so overlap here is a genuine
               cross-device double write. *)
            let writes = Ir.writes b in
            let regions d =
              List.map
                (fun e ->
                  Effects.subrange_region g b
                    ~ext:(device_ext sh ext d ~widen:false)
                    e)
                writes
            in
            let per_dev = Array.init ndev regions in
            for d1 = 0 to ndev - 1 do
              for d2 = d1 + 1 to ndev - 1 do
                List.iter
                  (fun r1 ->
                    List.iter
                      (fun r2 ->
                        if not (Effects.regions_disjoint r1 r2) then
                          if
                            r1.Effects.rg_precision = Effects.Must
                            && r2.Effects.rg_precision = Effects.Must
                          then
                            push
                              (Diagnostic.errorf ~context:ctx "D400"
                                 "devices %d and %d write overlapping \
                                  cells of buffer %s under %s sharding \
                                  on axis %d"
                                 d1 d2 r1.Effects.rg_name
                                 (strategy_name sh.sh_strategy)
                                 sh.sh_axis)
                          else
                            push
                              (Diagnostic.notef ~context:ctx "D402"
                                 "per-device write disjointness on \
                                  buffer %s is unproven (may-level \
                                  footprints)"
                                 r1.Effects.rg_name))
                      per_dev.(d2))
                  per_dev.(d1)
              done
            done;
            (* Cross-device anti-chains: a front is executed as a
               per-device partition of the single-device front.  Any
               subset family of a proven-disjoint front is disjoint, so
               [Proven] extends to the sharded run; anything weaker
               downgrades the block to sequential order at run time —
               record it so the plan's parallelism story is honest. *)
            match (Effects.block_race g b).Effects.rr_verdict with
            | Effects.Proven _ -> ()
            | Effects.Unproven m ->
                push
                  (Diagnostic.notef ~context:ctx "D403"
                     "cross-device fronts fall back to sequential \
                      order: %s" m)
            | Effects.Race (_, m) ->
                push
                  (Diagnostic.notef ~context:ctx "D403"
                     "cross-device fronts fall back to sequential \
                      order: %s" m)
          end)
    (Ir.dataflow_order g);
  Diagnostic.sort !diags

let legal diags = Diagnostic.count_errors diags = 0

let pp_shard fmt sh =
  match sh.sh_strategy with
  | Replicate -> Format.fprintf fmt "%s: replicate on device %d" sh.sh_block sh.sh_pin
  | Pipeline -> Format.fprintf fmt "%s: pipeline stage on device %d" sh.sh_block sh.sh_pin
  | Batch | Sequence ->
      Format.fprintf fmt "%s: %s axis %d [%d,%d) chunk %d%s over %d device(s)"
        sh.sh_block
        (strategy_name sh.sh_strategy)
        sh.sh_axis sh.sh_lo sh.sh_hi sh.sh_chunk
        (if sh.sh_halo > 0 then Printf.sprintf " halo %d" sh.sh_halo else "")
        sh.sh_devices
