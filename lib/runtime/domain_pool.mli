(** A fixed pool of worker domains for data-parallel loops.

    The reference executor ({!Vm}) computes wavefront anti-chains whose
    points are independent by construction; this pool is how those
    points (and the benchmark harness's table cells) actually run on
    multiple cores.  Design constraints, in order:

    - {b determinism}: [parallel_for] writes to disjoint indices, so
      its result never depends on scheduling; [map_reduce] combines
      fixed-size chunk partials in chunk-index order, so the same
      [(lo, hi, chunk)] gives a bitwise-identical float result at any
      domain count;
    - {b fixed workers}: [size - 1] domains are spawned once at
      {!create} and reused for every loop — no per-loop spawn cost;
    - {b safe nesting}: a loop issued from inside a worker runs inline
      on that worker instead of deadlocking the pool;
    - {b safe concurrent submission}: client domains may issue loops on
      the same pool concurrently — whole loops serialize on an internal
      submission lock (the job board holds one job at a time), so a
      second submitter blocks until the first loop quiesces instead of
      corrupting it.  This is what the serving layer's broker/scheduler
      domains rely on.

    The global pool ({!get}) sizes itself from the [FT_NUM_DOMAINS]
    environment variable (or {!set_num_domains}, the CLI's hook), so
    [FT_NUM_DOMAINS=4 ftc run prog.ft] is the whole user interface. *)

type t

val create : domains:int -> t
(** A pool that runs loops over [max 1 domains] domains: the calling
    domain plus [domains - 1] spawned workers.  [create ~domains:1]
    spawns nothing and runs every loop inline. *)

val size : t -> int
(** The total parallelism, including the calling domain. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent.  Loops submitted after
    shutdown run inline on the caller. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [lo <= i < hi],
    split into contiguous chunks claimed by the pool's domains.  [f]
    must be safe to call concurrently on distinct indices.  Empty
    ranges ([hi <= lo]) are a no-op; ranges smaller than the pool run
    on however many domains they fill.  [chunk] (default: a fraction
    of [hi - lo] per domain) bounds each claim.  The first exception
    raised by any [f i] is re-raised in the caller (with its
    backtrace) after the loop quiesces. *)

val parallel_for_workers :
  ?chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for_workers pool ~lo ~hi f] is {!parallel_for} except the
    body receives [f worker i] where [worker] identifies the domain
    running the iteration: [0] for the calling domain, [1..size-1] for
    spawned workers.  Bodies that index per-worker scratch by [worker]
    are race-free.  The inline paths (pool of one, single iteration,
    call issued from inside a worker) always pass [worker = 0] and
    allocate nothing. *)

val map_reduce :
  ?chunk:int ->
  t ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [map_reduce pool ~lo ~hi ~map ~combine ~init] is
    [fold_left combine init (List.map map [lo..hi-1])] with a fixed,
    scheduling-independent association: the range is split into chunks
    of [chunk] (default: a pure function of [hi - lo], {e not} of the
    pool size), each chunk folds its indices in ascending order
    starting from [init], and the chunk partials are combined left to
    right in chunk order.  With the same [chunk] the result is
    bitwise-identical at any domain count, provided [init] is a
    neutral element of [combine]. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f a] is [Array.map f a] with the elements computed
    across the pool (element order preserved in the result). *)

(** {1 The shared pool} *)

val default_num_domains : unit -> int
(** [FT_NUM_DOMAINS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val num_domains : unit -> int
(** The size the global pool will have: the {!set_num_domains}
    override when present, else {!default_num_domains}. *)

val set_num_domains : int option -> unit
(** Override (or clear the override of) the global pool size — the CLI
    knob behind [--domains].  Takes effect on the next {!get}, which
    recreates the pool if the size changed. *)

val get : unit -> t
(** The process-wide pool, created on first use with {!num_domains}
    workers and transparently recreated when that number changes. *)
