(* A generation-counted job board: the caller publishes one closure,
   bumps the generation and wakes every worker; each worker runs the
   closure to completion (the closure itself hands out chunks through
   an atomic counter, so the board never sees individual indices).
   Mutex + condition give the necessary happens-before edges: writes
   made inside a loop body are visible to the caller once the last
   worker checks in. *)

type t = {
  nworkers : int; (* spawned domains; size = nworkers + 1 *)
  m : Mutex.t;
  submit_m : Mutex.t; (* serializes whole loops across submitter domains *)
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable gen : int;
  mutable job : (unit -> unit) option;
  mutable pending : int; (* workers still inside the current job *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Loops issued from inside a worker run inline: a worker blocking on
   its own pool would deadlock it. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Each spawned worker carries its 1-based index in the pool that owns
   it; the calling domain is index 0.  A domain belongs to at most one
   pool, so one key suffices, and loops that run inline (trivial pool,
   single index, nested issue) always report index 0. *)
let worker_ix_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_loop ix pool =
  Domain.DLS.set in_worker_key true;
  Domain.DLS.set worker_ix_key ix;
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while pool.gen = !my_gen && not pool.stop do
      Condition.wait pool.work_cv pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      my_gen := pool.gen;
      let job = pool.job in
      Mutex.unlock pool.m;
      (match job with Some f -> f () | None -> ());
      Mutex.lock pool.m;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.done_cv;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

let create ~domains =
  let n = Stdlib.max 1 domains in
  let pool =
    {
      nworkers = n - 1;
      m = Mutex.create ();
      submit_m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      gen = 0;
      job = None;
      pending = 0;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init pool.nworkers (fun i ->
        Domain.spawn (fun () -> worker_loop (i + 1) pool));
  pool

let size pool = pool.nworkers + 1

let shutdown pool =
  Mutex.lock pool.m;
  let ws = pool.workers in
  pool.stop <- true;
  pool.workers <- [];
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  List.iter Domain.join ws

(* Run [job] on every domain of the pool (caller included) and wait
   until all of them return.  [job] must be idempotent with respect to
   concurrent execution — in practice it is always a chunk-claiming
   loop over an atomic counter.

   Concurrent submitters (several client domains driving loops on one
   pool, the serving layer's pattern) serialize on [submit_m]: the job
   board holds one job at a time, and without the lock a second
   submitter would overwrite [job]/[pending] while the first loop's
   workers are still draining it.  Waiting submitters therefore see
   backpressure, never corruption.  While the caller runs its own share
   it is marked as a worker so loops issued from inside the job body
   run inline instead of self-deadlocking on [submit_m]. *)
let run_job pool job =
  Mutex.lock pool.submit_m;
  Mutex.lock pool.m;
  if pool.stop || pool.nworkers = 0 then begin
    Mutex.unlock pool.m;
    Mutex.unlock pool.submit_m;
    job ()
  end
  else begin
    pool.job <- Some job;
    pool.gen <- pool.gen + 1;
    pool.pending <- pool.nworkers;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    Domain.DLS.set in_worker_key true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker_key false)
      job;
    Mutex.lock pool.m;
    while pool.pending > 0 do
      Condition.wait pool.done_cv pool.m
    done;
    pool.job <- None;
    Mutex.unlock pool.m;
    Mutex.unlock pool.submit_m
  end

let reraise_first exn_slot =
  match Atomic.get exn_slot with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let chunked_job ~lo ~chunk ~nchunks exn_slot run_chunk =
  let next = Atomic.make 0 in
  fun () ->
    let continue = ref true in
    while !continue do
      let c = Atomic.fetch_and_add next 1 in
      if c >= nchunks then continue := false
      else if Atomic.get exn_slot = None then begin
        let clo = lo + (c * chunk) in
        try run_chunk c clo (clo + chunk)
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set exn_slot None (Some (e, bt)))
      end
    done

let parallel_for ?chunk pool ~lo ~hi f =
  let n = hi - lo in
  if n <= 0 then ()
  else if size pool = 1 || n = 1 || Domain.DLS.get in_worker_key then
    for i = lo to hi - 1 do
      f i
    done
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Domain_pool.parallel_for: chunk must be >= 1"
      | None -> Stdlib.max 1 (n / (size pool * 4))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let exn_slot = Atomic.make None in
    let job =
      chunked_job ~lo ~chunk ~nchunks exn_slot (fun _ clo chi ->
          for i = clo to Stdlib.min hi chi - 1 do
            f i
          done)
    in
    run_job pool job;
    reraise_first exn_slot
  end

(* Like [parallel_for], but the body also receives the index of the
   domain running it — the compiled VM uses it to pick per-worker
   scratch buffers.  The inline path (trivial pool, single iteration,
   issued from a worker) passes 0 and performs no allocation at all;
   that path is what makes `domains=1` a strict no-op passthrough. *)
let parallel_for_workers ?chunk pool ~lo ~hi f =
  let n = hi - lo in
  if n <= 0 then ()
  else if size pool = 1 || n = 1 || Domain.DLS.get in_worker_key then
    for i = lo to hi - 1 do
      f 0 i
    done
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ ->
          invalid_arg "Domain_pool.parallel_for_workers: chunk must be >= 1"
      | None -> Stdlib.max 1 (n / (size pool * 4))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let exn_slot = Atomic.make None in
    let job =
      chunked_job ~lo ~chunk ~nchunks exn_slot (fun _ clo chi ->
          let w = Domain.DLS.get worker_ix_key in
          for i = clo to Stdlib.min hi chi - 1 do
            f w i
          done)
    in
    run_job pool job;
    reraise_first exn_slot
  end

(* The default reduce chunk is a pure function of the range length so
   that the chunk partials — and therefore the float association — are
   identical at every domain count. *)
let map_reduce ?chunk pool ~lo ~hi ~map ~combine ~init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Domain_pool.map_reduce: chunk must be >= 1"
      | None -> Stdlib.max 1 ((n + 63) / 64)
    in
    let nchunks = (n + chunk - 1) / chunk in
    let partials = Array.make nchunks init in
    let fold_chunk c clo chi =
      let acc = ref init in
      for i = clo to Stdlib.min hi chi - 1 do
        acc := combine !acc (map i)
      done;
      partials.(c) <- !acc
    in
    if size pool = 1 || nchunks = 1 || Domain.DLS.get in_worker_key then
      for c = 0 to nchunks - 1 do
        let clo = lo + (c * chunk) in
        fold_chunk c clo (clo + chunk)
      done
    else begin
      let exn_slot = Atomic.make None in
      run_job pool (chunked_job ~lo ~chunk ~nchunks exn_slot fold_chunk);
      reraise_first exn_slot
    end;
    Array.fold_left combine init partials
  end

let map_array pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Seed the result with the first element (computed inline) so no
       dummy value is ever observable. *)
    let out = Array.make n (f a.(0)) in
    parallel_for pool ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

(* ------------------------- the shared pool ------------------------- *)

let default_num_domains () =
  match Sys.getenv_opt "FT_NUM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let override : int option ref = ref None
let set_num_domains n = override := n

let num_domains () =
  match !override with Some n -> Stdlib.max 1 n | None -> default_num_domains ()

let global : t option ref = ref None
let global_m = Mutex.create ()

let get () =
  let want = num_domains () in
  Mutex.lock global_m;
  let pool =
    match !global with
    | Some p when size p = want -> p
    | existing ->
        (match existing with Some p -> shutdown p | None -> ());
        let p = create ~domains:want in
        global := Some p;
        p
  in
  Mutex.unlock global_m;
  pool
