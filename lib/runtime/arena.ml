module A = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type t = { data : buffer }

let create ~floats =
  let n = Stdlib.max 0 floats in
  let data = A.create Bigarray.Float64 Bigarray.C_layout n in
  A.fill data 0.0;
  { data }

let floats a = A.dim a.data
let bytes a = 8 * A.dim a.data

let view a ~off ~len =
  if off < 0 || len < 0 || off + len > A.dim a.data then
    invalid_arg
      (Printf.sprintf "Arena.view: [%d,%d) exceeds %d floats" off (off + len)
         (A.dim a.data))
  else A.sub a.data off len
