(** A single flat float64 allocation serving every intermediate buffer
    of a compiled plan.

    The compiled executor sizes one arena per plan from the static
    liveness layout ([Liveness.layout] in [lib/analysis]) and carves
    per-buffer views out of it at plan time; steady-state execution
    then performs {e zero} heap allocation — every write lands in a
    preallocated region whose offset was proven interference-free.

    Offsets and lengths are in float64 elements, not bytes: the caller
    converts from the layout's byte convention once, at plan time. *)

type buffer =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : floats:int -> t
(** An arena of [max 0 floats] float64 cells.  Contents start zeroed so
    view creation order can never leak uninitialised memory between
    plans. *)

val floats : t -> int
(** Total capacity in float64 elements. *)

val bytes : t -> int
(** Total capacity in bytes ([8 * floats]). *)

val view : t -> off:int -> len:int -> buffer
(** [view a ~off ~len] is the [len]-element window starting [off]
    floats into the arena, sharing its storage.  Views are created at
    plan time only; overlapping views are legal exactly when the
    liveness layout proved the lifetimes disjoint.
    @raise Invalid_argument if the window exceeds the arena. *)
