(** The auto-tuner's knob space: which parameters of a compiled plan
    can move, and what values they may take.

    A space is extracted from the {e default-config} plan of a program
    ({!of_plan}): every kernel carrying a per-cell matmul
    ([Plan.ks_gemm]) contributes a {e tile site} — one
    {!Tile.tiles} choice for that block — and five global axes
    complete the space: elementwise chunk size, VM front chunk size,
    reuse collapsing (the §5.2 ablation knob, here a searchable
    boolean), the compiled engine's kernel-fusion switch, and the
    mc/kc/nc blocking of its prepacked B panels (both bitwise-neutral
    — they move only time).

    Points are mixed-radix index vectors ([int array]); index 0 on
    every axis is the default value, so the all-zeros point decodes to
    exactly the configuration an untuned compile uses.  Validity —
    base-tile alignment and the shared-memory capacity of the device,
    with tiles clamped to the site's dimensions first — is a predicate
    over points, not baked into the axes, so searches must call
    {!valid_point} (the samplers already do). *)

type gemm_site = {
  g_block : string;  (** block name (kernel name minus [".waveN"]) *)
  g_m : int;
  g_n : int;
  g_k : int;
}

type space = {
  s_sites : gemm_site list;
  s_tiles : Tile.tiles list;   (** the tile menu, site axes index into it *)
  s_elem_chunks : int list;    (** always starts with 0 = unchunked *)
  s_vm_chunks : int list;      (** always starts with 0 = pool default *)
  s_collapse : bool list;      (** [true] first: reuse collapsing on *)
  s_fuse : bool list;          (** [true] first: compiled kernel fusion on *)
  s_packs : Tensor.pack_blocking option list;
      (** B-panel blockings; [None] first = engine default *)
  s_smem_limit : int;          (** device shared memory per SM, bytes *)
}

type candidate = {
  c_tile : Tile.config;
  c_collapse : bool;  (** [collapse_reuse] compile flag *)
}

val default_candidate : candidate
(** {!Tile.default_config} with reuse collapsing on — what an untuned
    compile does. *)

val of_plan : ?device:Device.t -> Plan.t -> space
(** Extract the knob space of a plan (default device: {!Device.a100},
    whose L1/shared capacity becomes the validity limit). *)

val axes : space -> int array
(** Axis sizes, in order: one per site ([|s_tiles| + 1]: 0 is
    "untiled"), then elem chunks, VM chunks, collapse, fuse, pack. *)

val default_point : space -> int array
(** All zeros. *)

val cardinality : space -> int
(** Product of axis sizes — the full grid, before validity. *)

val decode : space -> int array -> candidate

val valid_point : space -> int array -> bool
(** Every selected tile, clamped to its site's [m]/[n]/[k], is
    base-tile aligned and fits [s_smem_limit]
    ({!Tile.valid_tiles}). *)

val valid : space -> candidate -> bool
(** The same constraint on a decoded candidate (any candidate built by
    {!decode} from a valid point satisfies it). *)

val point_key : int array -> string
(** Canonical memo key for a point. *)

val sample_point : space -> Rng.t -> int array
(** Uniform draw over the grid, rejection-sampled to validity
    (deterministic given the Rng state; falls back to the default
    point if 64 draws all fail). *)

val mutate : space -> Rng.t -> int array -> int array
(** Re-draw one uniformly chosen axis; rejection-sampled to validity
    (returns a copy of the input if 64 tries all fail). *)

val crossover : Rng.t -> int array -> int array -> int array
(** Uniform crossover: each coordinate from either parent with equal
    probability. *)

val to_string : candidate -> string
(** Human-readable config, e.g.
    ["blk=cell:128x64x32,elem_chunk=4096,vm_chunk=2"] — ["default"]
    for the untuned candidate. *)
