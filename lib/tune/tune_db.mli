(** The tuning database: best-known configurations, persisted.

    Records are keyed by the program's compile digest
    ([Pipeline.program_key] / [source_key] computed at the {e default}
    tile config) plus a digest of the device description — a tuned
    config is only ever applied to the exact program and device it was
    searched for.  Storage mirrors the plan cache: an in-memory table
    always, plus one file per record under the directory named by the
    [FT_TUNE_DB] environment variable when set.  Disk entries are
    versioned Marshal blobs written atomically (temp + rename); any
    read failure — missing file, version skew, corruption — counts as
    a miss.  {!store} keeps whichever of the old and new records has
    the lower cost, so the database is monotone in quality.

    {!install} registers the database as {!Pipeline.set_tune_source},
    after which compiles passing [~tune:true] transparently pick up
    the best-known config — no search runs at compile time. *)

val env_var : string
(** ["FT_TUNE_DB"]. *)

val version : int
(** Bumped whenever the record layout changes; older disk entries then
    read as misses. *)

type record = {
  tr_key : string;       (** program/source digest at default config *)
  tr_device : string;    (** {!device_digest} of the target device *)
  tr_tile : Tile.config;
  tr_collapse : bool;
  tr_cost : float;       (** the winning evaluation's cost *)
  tr_oracle : string;
  tr_strategy : string;
  tr_budget : int;
  tr_seed : int;
}

type stats = { hits : int; misses : int; disk_hits : int; stores : int }

val device_digest : Device.t -> string

val lookup : key:string -> device:string -> record option
(** Memory, then [FT_TUNE_DB] disk (caching the hit in memory), then
    miss. *)

val store : record -> unit
(** Insert unless an existing record for the same (key, device) has
    lower or equal cost (the existing record is adopted into memory in
    that case). *)

val entry_path : key:string -> device:string -> string option
(** Where a record lives on disk, when [FT_TUNE_DB] is set. *)

val stats : unit -> stats

val clear_memory : unit -> unit
(** Drop the in-memory table and zero the counters; disk entries are
    left alone (parallel to [Pipeline.Cache.clear]). *)

val disk_entries : unit -> string list
(** Entry file names under [FT_TUNE_DB] (empty when unset). *)

val clear_disk : unit -> int
(** Delete all disk entries; returns how many were removed. *)

val install : ?device:Device.t -> unit -> unit
(** Register this database as the pipeline's tuned-config source
    (default device: {!Device.a100}). *)
