(* The tunable-parameter space of a compiled plan.

   A knob space is extracted from the default-config plan: every
   kernel that carries a per-cell matmul becomes a tile site (one
   [Tile.tiles] choice per block), and three global axes — elementwise
   chunk, VM front chunk, reuse collapsing — complete the space.  A
   point in the space is a mixed-radix index vector; index 0 on every
   axis is the default (legacy emission, no chunking, reuse on), so
   the all-zeros point always decodes to the configuration the
   compiler uses when no tuning has happened. *)

type gemm_site = { g_block : string; g_m : int; g_n : int; g_k : int }

type space = {
  s_sites : gemm_site list;
  s_tiles : Tile.tiles list;
  s_elem_chunks : int list;
  s_vm_chunks : int list;
  s_collapse : bool list;
  s_fuse : bool list;
  s_packs : Tensor.pack_blocking option list;
  s_smem_limit : int;
}

type candidate = { c_tile : Tile.config; c_collapse : bool }

let default_candidate =
  { c_tile = Tile.default_config; c_collapse = true }

(* The tile menu: every base-tile-aligned shape in a small power-of-two
   lattice.  Alignment is guaranteed by construction; the shared-memory
   capacity constraint is *not* pre-filtered here — it depends on the
   site's dimensions (tiles are clamped to the problem before staging),
   so it is checked per-point by [valid_point]. *)
let tile_menu =
  List.concat_map
    (fun tm ->
      List.concat_map
        (fun tn ->
          List.map
            (fun tk -> { Tile.t_m = tm; t_n = tn; t_k = tk })
            [ 16; 32; 64 ])
        [ 16; 32; 64; 128; 256 ])
    [ 16; 32; 64; 128; 256 ]

let elem_chunk_menu = [ 0; 4096; 16384; 65536 ]
let vm_chunk_menu = [ 0; 1; 2; 4 ]

(* B-panel blockings for the compiled engine's packed GEMM; index 0 =
   None = the engine default.  Any choice is bitwise-neutral, so the
   menu trades only cache behaviour. *)
let pack_menu =
  [
    None;
    Some { Tensor.mc = 32; kc = 128; nc = 128 };
    Some { Tensor.mc = 64; kc = 256; nc = 512 };
    Some { Tensor.mc = 128; kc = 512; nc = 256 };
  ]

let site_of_kernel (ks : Plan.kernel_spec) =
  match ks.Plan.ks_gemm with
  | None -> None
  | Some (m, n, k) ->
      Some { g_block = Profile.block_of_kernel ks.Plan.ks_name;
             g_m = m; g_n = n; g_k = k }

let of_plan ?(device = Device.a100) (p : Plan.t) =
  let sites =
    List.fold_left
      (fun acc ks ->
        match site_of_kernel ks with
        | Some s when not (List.exists (fun s' -> s'.g_block = s.g_block) acc)
          ->
            s :: acc
        | _ -> acc)
      [] p.Plan.kernels
    |> List.rev
  in
  {
    s_sites = sites;
    s_tiles = tile_menu;
    s_elem_chunks = elem_chunk_menu;
    s_vm_chunks = vm_chunk_menu;
    s_collapse = [ true; false ];
    s_fuse = [ true; false ];
    s_packs = pack_menu;
    s_smem_limit = device.Device.l1_bytes_per_sm;
  }

(* ------------------------- point encoding ------------------------- *)

(* Axis order: one axis per gemm site (values: 0 = legacy, i =
   s_tiles[i-1]), then elem chunk, vm chunk, collapse, fuse, pack. *)

let axes sp =
  let site_axis = List.length sp.s_tiles + 1 in
  Array.of_list
    (List.map (fun _ -> site_axis) sp.s_sites
    @ [
        List.length sp.s_elem_chunks;
        List.length sp.s_vm_chunks;
        List.length sp.s_collapse;
        List.length sp.s_fuse;
        List.length sp.s_packs;
      ])

let default_point sp = Array.make (Array.length (axes sp)) 0

let cardinality sp = Array.fold_left (fun a n -> a * n) 1 (axes sp)

let site_tiles sp pt i =
  let v = pt.(i) in
  if v = 0 then None else Some (List.nth sp.s_tiles (v - 1))

let decode sp pt =
  let n_sites = List.length sp.s_sites in
  let cfg_tiles =
    List.concat
      (List.mapi
         (fun i s ->
           match site_tiles sp pt i with
           | None -> []
           | Some t -> [ (s.g_block, t) ])
         sp.s_sites)
  in
  let elem = List.nth sp.s_elem_chunks pt.(n_sites) in
  let vm = List.nth sp.s_vm_chunks pt.(n_sites + 1) in
  let collapse = List.nth sp.s_collapse pt.(n_sites + 2) in
  let fuse = List.nth sp.s_fuse pt.(n_sites + 3) in
  let pack = List.nth sp.s_packs pt.(n_sites + 4) in
  {
    c_tile =
      {
        Tile.cfg_tiles;
        cfg_default = None;
        cfg_elem_chunk = elem;
        cfg_vm_chunk = vm;
        cfg_fuse = fuse;
        cfg_pack = pack;
      };
    c_collapse = collapse;
  }

(* A point is valid when every selected tile, clamped to its site's
   dimensions, fits the device's shared memory, and every side is
   base-tile aligned (guaranteed for menu tiles, checked anyway so
   hand-made candidates go through the same gate). *)
let valid_point sp pt =
  List.for_all Fun.id
    (List.mapi
       (fun i s ->
         match site_tiles sp pt i with
         | None -> true
         | Some t ->
             Tile.valid_tiles ~smem_limit:sp.s_smem_limit ~m:s.g_m ~n:s.g_n
               ~k:s.g_k t)
       sp.s_sites)

let valid sp c =
  c.c_tile.Tile.cfg_default = None
  && List.for_all
       (fun (name, t) ->
         match List.find_opt (fun s -> s.g_block = name) sp.s_sites with
         | None -> false
         | Some s ->
             Tile.valid_tiles ~smem_limit:sp.s_smem_limit ~m:s.g_m ~n:s.g_n
               ~k:s.g_k t)
       c.c_tile.Tile.cfg_tiles

let point_key pt = String.concat "," (List.map string_of_int (Array.to_list pt))

(* ------------------------- deterministic moves -------------------- *)

let sample_point sp rng =
  let ax = axes sp in
  let rec draw tries =
    let pt = Array.map (fun n -> Rng.int rng n) ax in
    if valid_point sp pt || tries > 64 then pt else draw (tries + 1)
  in
  let pt = draw 0 in
  if valid_point sp pt then pt else default_point sp

let mutate sp rng pt =
  let ax = axes sp in
  let rec go tries =
    let pt' = Array.copy pt in
    let d = Rng.int rng (Array.length ax) in
    pt'.(d) <- Rng.int rng ax.(d);
    if valid_point sp pt' || tries > 64 then pt' else go (tries + 1)
  in
  let pt' = go 0 in
  if valid_point sp pt' then pt' else Array.copy pt

let crossover rng a b =
  Array.init (Array.length a) (fun i ->
      if Rng.int rng 2 = 0 then a.(i) else b.(i))

let to_string c =
  Tile.config_to_string c.c_tile
  ^ if c.c_collapse then "" else ",collapse_reuse=off"
