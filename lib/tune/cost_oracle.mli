(** Candidate cost models for the auto-tuner.

    An oracle maps a {!Knobs.candidate} to a scalar cost (lower is
    better).  Searches only ever {e compare} costs from one oracle, so
    the unit is the oracle's own: microseconds of modeled device time
    for {!analytical} and {!simulated}, whatever the runner returns
    for {!measured}. *)

type t

val name : t -> string
val eval : t -> Knobs.candidate -> float

val analytical : ?device:Device.t -> (Knobs.candidate -> Plan.t) -> t
(** Pure roofline over the candidate's plan ({!plan_cost}): instant,
    stateless, and — at fixed tiles — monotone non-decreasing in
    problem size. *)

val simulated : ?device:Device.t -> (Knobs.candidate -> Plan.t) -> t
(** [Exec.time_ms] on the candidate's plan (µs): the full simulator
    including the L2 residency model. *)

val measured : ?repeats:int -> (Knobs.candidate -> float) -> t
(** Median of [repeats] (default 3) calls to the supplied runner —
    e.g. wall-clock of the reference VM executing the candidate. *)

val plan_cost : ?device:Device.t -> Plan.t -> float
(** The analytical model itself: per kernel, the max of wave-quantized
    compute time and per-memory-level transfer times, plus launch and
    host overheads; summed over the plan.  Microseconds. *)

val gemm_cost :
  ?device:Device.t ->
  ?tensor_core:bool ->
  tiles:Tile.tiles option ->
  m:int -> n:int -> k:int ->
  unit ->
  float
(** Analytical cost of a single [m]×[n]×[k] GEMM under a tile choice
    ([None] = legacy whole-problem emission), built from the
    {!Tile} staging model.  At fixed [tiles], monotone non-decreasing
    in each of [m], [n], [k] — the property the QCheck suite
    checks. *)
