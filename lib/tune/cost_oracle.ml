(* Candidate cost models for the auto-tuner.

   Three implementations behind one closure type:

   - [analytical]: a pure roofline over the plan's kernels — wave-
     quantized compute against the device's occupancy granularity, and
     byte counts against the memory-level bandwidths.  Instant, and
     (at fixed tiles) monotone non-decreasing in problem size, which
     the property tests rely on.
   - [simulated]: [Executor.time_ms] — the full simulator including the
     L2 residency model.  Still fast, but stateful across kernels.
   - [measured]: caller-supplied runner (wall-clock of the reference
     VM and/or the simulator), median of [repeats] runs.

   Costs are microseconds (analytical/simulated) or whatever the
   runner returns (measured) — searches only compare, never mix
   oracles. *)

type t = {
  o_name : string;
  o_eval : Knobs.candidate -> float;
}

let name o = o.o_name
let eval o c = o.o_eval c

(* --------------------- analytical kernel model --------------------- *)

let bytes_per_us gbs = gbs *. 1e3     (* GB/s = 10^9 B/s = 10^3 B/µs *)
let flops_per_us gflops = gflops *. 1e3

(* Wave-quantized compute time: a device retires thread blocks in
   waves of [blocks_for_full_occupancy]; a partial wave still occupies
   the machine for a full per-task quantum.  Charging
   ceil(tasks/B) * B * flops_per_task keeps the model monotone in the
   problem size at fixed tiles — occupancy-ratio models are not (the
   ratio jumps when a dimension crosses a tile boundary). *)
let compute_us (dev : Device.t) ~flops ~tasks ~tensor_core =
  let tasks = Stdlib.max 1 tasks in
  let peak =
    flops_per_us
      (if tensor_core then dev.Device.tensor_gflops
       else dev.Device.fp32_gflops)
  in
  let b = Stdlib.max 1 dev.Device.blocks_for_full_occupancy in
  let waves = Tile.ceil_div tasks b in
  float_of_int (waves * b) *. (flops /. float_of_int tasks) /. peak

let kernel_us (dev : Device.t) (ks : Plan.kernel_spec) =
  let dram, l2, l1h =
    List.fold_left
      (fun (d, l2, l1) (a : Plan.access) ->
        match a.Plan.a_hint with
        | Plan.L2_only -> (d, l2 +. a.Plan.a_bytes, l1)
        | Plan.L1_only -> (d, l2, l1 +. a.Plan.a_bytes)
        | Plan.Auto | Plan.Dram -> (d +. a.Plan.a_bytes, l2, l1))
      (0., 0., 0.) ks.Plan.ks_accesses
  in
  let t_compute =
    compute_us dev ~flops:ks.Plan.ks_flops ~tasks:ks.Plan.ks_tasks
      ~tensor_core:ks.Plan.ks_tensor_core
  in
  let t_dram = dram /. bytes_per_us dev.Device.dram_bw_gbs in
  let t_l2 = l2 /. bytes_per_us dev.Device.l2_bw_gbs in
  let t_l1 =
    (l1h +. ks.Plan.ks_l1_bytes) /. bytes_per_us dev.Device.l1_bw_gbs
  in
  let launch =
    if ks.Plan.ks_launch_free then 0. else dev.Device.kernel_launch_us
  in
  Stdlib.max t_compute (Stdlib.max t_dram (Stdlib.max t_l2 t_l1))
  +. launch +. ks.Plan.ks_host_us

let plan_cost ?(device = Device.a100) (p : Plan.t) =
  List.fold_left (fun acc ks -> acc +. kernel_us device ks) 0. p.Plan.kernels

(* Analytical cost of one GEMM under a tile choice, from the Tile
   staging model alone — the formula the monotonicity property tests
   exercise directly.  [None] is legacy emission: one task covering
   the whole problem. *)
let gemm_cost ?(device = Device.a100) ?(tensor_core = true) ~tiles ~m ~n ~k ()
    =
  let m = Stdlib.max 1 m and n = Stdlib.max 1 n and k = Stdlib.max 1 k in
  let flops, tasks, l1 =
    match tiles with
    | None ->
        ( 2.0 *. float_of_int m *. float_of_int n *. float_of_int k,
          1,
          Tile.gemm_l1_bytes ~m ~n ~k () )
    | Some t ->
        let em = Tile.eff t.Tile.t_m m and en = Tile.eff t.Tile.t_n n in
        let pk = Tile.padded k t.Tile.t_k in
        let tasks = Tile.gemm_tile_tasks t ~m ~n in
        ( float_of_int tasks *. (2.0 *. float_of_int (em * en * pk)),
          tasks,
          Tile.gemm_tile_l1_bytes t ~m ~n ~k )
  in
  let dram = float_of_int (4 * ((m * k) + (k * n) + (m * n))) in
  let t_compute = compute_us device ~flops ~tasks ~tensor_core in
  let t_dram = dram /. bytes_per_us device.Device.dram_bw_gbs in
  let t_l1 = l1 /. bytes_per_us device.Device.l1_bw_gbs in
  Stdlib.max t_compute (Stdlib.max t_dram t_l1)

(* ----------------------------- oracles ----------------------------- *)

let analytical ?(device = Device.a100) plan_of =
  {
    o_name = "analytical";
    o_eval = (fun c -> plan_cost ~device (plan_of c));
  }

let simulated ?(device = Device.a100) plan_of =
  {
    o_name = "simulated";
    o_eval = (fun c -> Executor.time_ms ~device (plan_of c) *. 1e3);
  }

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Cost_oracle.median: empty"
  | sorted -> List.nth sorted (List.length sorted / 2)

let measured ?(repeats = 3) run =
  let repeats = Stdlib.max 1 repeats in
  {
    o_name = "measured";
    o_eval =
      (fun c -> median (List.init repeats (fun _ -> run c)));
  }
