(** The tuner's front door: search a program's knob space and persist
    the winner.

    [tune_program] / [tune_file] extract the {!Knobs.space} from the
    program's default-config plan, run a {!Search} strategy against a
    {!Cost_oracle} under a fixed seed and budget, store the best
    configuration in the {!Tune_db} (keyed by [Pipeline.program_key] /
    [source_key] at the default config, so untuned compiles with
    [~tune:true] find it), and return a {!report} with the full cost
    trajectory.  Everything is deterministic given (seed, budget,
    strategy, oracle): two identical invocations pick the identical
    configuration. *)

type oracle_kind =
  | Sim      (** {!Cost_oracle.analytical} on the device model *)
  | Measure  (** {!Cost_oracle.measured}: simulated device time plus
                 wall-clock of the reference VM, median of 3 *)

val oracle_kind_name : oracle_kind -> string
(** ["sim"] / ["measure"] — the [ftc tune --oracle] vocabulary. *)

val oracle_kind_of_name : string -> oracle_kind option

type report = {
  rp_program : string;        (** program name *)
  rp_key : string;            (** the tuning-database key *)
  rp_device : Device.t;
  rp_oracle : oracle_kind;
  rp_space : Knobs.space;
  rp_result : Search.result;
  rp_db_path : string option;
      (** the record's [FT_TUNE_DB] file, when persistence is on *)
}

val tune_program :
  ?device:Device.t ->
  ?seed:int ->
  ?strategy:Search.strategy ->
  ?budget:int ->
  ?oracle:oracle_kind ->
  Expr.program ->
  report
(** Defaults: a100, seed 2024, grid, budget 32, sim. *)

val tune_file :
  ?device:Device.t ->
  ?seed:int ->
  ?strategy:Search.strategy ->
  ?budget:int ->
  ?oracle:oracle_kind ->
  string ->
  report
(** Parse, type-check and tune a [.ft] file; the database key is the
    source digest, matching what [ftc run] / [ftc profile] look up.
    @raise Parse.Syntax_error / [Typecheck.Type_error] on an invalid
    program. *)

val config_to_jsonv : Knobs.candidate -> Jsonw.t

val report_to_jsonv : report -> Jsonw.t
(** The [ftc tune --format json] document: program, key, device,
    search parameters, default/best cost, best config, and the full
    cost trajectory. *)

val report_to_text : report -> string
