(* Persistent best-known-config database, [FT_PLAN_CACHE]-style.

   A record stores the winning configuration of one search, keyed by
   the program's compile digest (Pipeline.program_key / source_key at
   the *default* tile config) plus a digest of the device description.
   Lookups go memory → disk ([FT_TUNE_DB] directory) → miss; disk
   entries are versioned Marshal blobs written atomically (temp +
   rename), and any read failure — missing file, version skew,
   corruption — is a miss, so the database can only ever cost a
   search, never an error.  [store] keeps the better record when one
   already exists: the database is monotone in quality. *)

let env_var = "FT_TUNE_DB"

(* 2: Tile.config gained cfg_fuse/cfg_pack (records under Marshal are
   layout-sensitive; version skew reads as a miss, never an error). *)
let version = 2

type record = {
  tr_key : string;
  tr_device : string;
  tr_tile : Tile.config;
  tr_collapse : bool;
  tr_cost : float;
  tr_oracle : string;
  tr_strategy : string;
  tr_budget : int;
  tr_seed : int;
}

type stats = { hits : int; misses : int; disk_hits : int; stores : int }

let table : (string, record) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let misses = ref 0
let disk_hits = ref 0
let stores = ref 0

let stats () =
  { hits = !hits; misses = !misses; disk_hits = !disk_hits; stores = !stores }

let clear_memory () =
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  disk_hits := 0;
  stores := 0

let device_digest (d : Device.t) =
  Digest.to_hex (Digest.string (Marshal.to_string d []))

let dir () =
  match Sys.getenv_opt env_var with
  | Some d when d <> "" -> Some d
  | _ -> None

let mem_key ~key ~device = key ^ ":" ^ device

let path_in ~dir ~key ~device =
  Filename.concat dir (Printf.sprintf "%s.%s.ftune" key device)

let entry_path ~key ~device =
  Option.map (fun d -> path_in ~dir:d ~key ~device) (dir ())

let read_disk path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let v, (r : record) = Marshal.from_channel ic in
          if v = version then Some r else None)
    with _ -> None

let write_disk path (r : record) =
  try
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Marshal.to_channel oc (version, r) []);
    Sys.rename tmp path
  with _ -> ()

let lookup ~key ~device =
  let mk = mem_key ~key ~device in
  match Hashtbl.find_opt table mk with
  | Some r ->
      incr hits;
      Some r
  | None -> (
      match Option.bind (entry_path ~key ~device) read_disk with
      | Some r ->
          incr disk_hits;
          Hashtbl.replace table mk r;
          Some r
      | None ->
          incr misses;
          None)

let better (a : record) (b : record) = a.tr_cost <= b.tr_cost

let store (r : record) =
  let mk = mem_key ~key:r.tr_key ~device:r.tr_device in
  let keep =
    match Hashtbl.find_opt table mk with
    | Some old when better old r -> false
    | _ -> (
        match entry_path ~key:r.tr_key ~device:r.tr_device with
        | Some path -> (
            match read_disk path with
            | Some old when better old r ->
                (* disk already holds a better config: adopt it *)
                Hashtbl.replace table mk old;
                false
            | _ -> true)
        | None -> true)
  in
  if keep then begin
    incr stores;
    Hashtbl.replace table mk r;
    match entry_path ~key:r.tr_key ~device:r.tr_device with
    | Some path -> write_disk path r
    | None -> ()
  end

let disk_entries () =
  match dir () with
  | None -> []
  | Some d -> (
      match Sys.readdir d with
      | exception Sys_error _ -> []
      | files ->
          Array.to_list files
          |> List.filter (fun f -> Filename.check_suffix f ".ftune")
          |> List.sort compare)

let clear_disk () =
  match dir () with
  | None -> 0
  | Some d ->
      List.fold_left
        (fun n f ->
          match Sys.remove (Filename.concat d f) with
          | () -> n + 1
          | exception Sys_error _ -> n)
        0 (disk_entries ())

let install ?(device = Device.a100) () =
  let dev = device_digest device in
  Pipeline.set_tune_source (fun key ->
      Option.map (fun r -> r.tr_tile) (lookup ~key ~device:dev))
