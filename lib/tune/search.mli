(** Deterministic schedule search under an evaluation budget.

    Three strategies over a {!Knobs.space}, all driven by one seeded
    {!Rng} stream and a shared memoizing evaluator — repeated points
    are free, only distinct oracle calls consume budget.  No
    wall-clock or ambient randomness is consulted anywhere, so a
    (seed, budget, strategy, space, oracle) tuple fully determines the
    result, including the evaluation order — the reproducibility the
    determinism tests assert bitwise.

    The default (all-zeros) point is always evaluation 0: the reported
    best can never be worse than the untuned configuration.

    When a {!Trace} sink is installed, each evaluation emits one span
    on track ["tune"] (name [tune.eval.N], synthetic timestamp = the
    evaluation index, duration = the cost, args [cost] and
    [config]). *)

type strategy =
  | Grid     (** exhaustive when the lattice fits the budget, else a
                 seeded uniform sample of it *)
  | Greedy   (** coordinate descent from the default point *)
  | Evolve   (** (4+4) evolutionary search: elitist selection, uniform
                 crossover, single-axis mutation *)

val strategy_name : strategy -> string
(** ["grid"], ["greedy"], ["evolve"] — the [ftc tune --strategy]
    vocabulary. *)

val strategy_of_name : string -> strategy option

type eval = {
  e_index : int;            (** 0-based evaluation order *)
  e_point : int array;
  e_candidate : Knobs.candidate;
  e_cost : float;
}

type result = {
  r_strategy : strategy;
  r_seed : int;
  r_budget : int;
  r_evals : eval list;  (** the cost trajectory, in evaluation order *)
  r_best : eval;
  r_default : eval;     (** the untuned configuration's evaluation *)
}

exception Budget_exhausted
(** Internal control flow; never escapes {!run}. *)

val run :
  ?seed:int ->
  strategy ->
  budget:int ->
  Knobs.space ->
  Cost_oracle.t ->
  result
(** Search the space (default seed 2024).  [budget] is the maximum
    number of oracle evaluations (≥ 1). *)
