(* Deterministic schedule search under an evaluation budget.

   Every strategy runs through one evaluator: a memo table over
   points, a budget counter that only distinct evaluations consume,
   and a "tune" trace track (one span per evaluation, cost as
   duration) on any installed sink.  All randomness flows from one
   seeded SplitMix64 stream, so a (seed, budget, strategy, space)
   quadruple fully determines the outcome — there is no wall-clock
   and no global RNG anywhere in the search. *)

type strategy = Grid | Greedy | Evolve

let strategy_name = function
  | Grid -> "grid"
  | Greedy -> "greedy"
  | Evolve -> "evolve"

let strategy_of_name = function
  | "grid" -> Some Grid
  | "greedy" -> Some Greedy
  | "evolve" -> Some Evolve
  | _ -> None

type eval = {
  e_index : int;
  e_point : int array;
  e_candidate : Knobs.candidate;
  e_cost : float;
}

type result = {
  r_strategy : strategy;
  r_seed : int;
  r_budget : int;
  r_evals : eval list;  (** in evaluation order; [e_index] 0 first *)
  r_best : eval;
  r_default : eval;     (** always evaluated, always [e_index] 0 *)
}

exception Budget_exhausted

type evaluator = {
  ev_space : Knobs.space;
  ev_oracle : Cost_oracle.t;
  ev_budget : int;
  ev_memo : (string, float) Hashtbl.t;
  mutable ev_count : int;
  mutable ev_log : eval list;  (* reversed *)
}

let evaluator space oracle budget =
  {
    ev_space = space;
    ev_oracle = oracle;
    ev_budget = budget;
    ev_memo = Hashtbl.create 64;
    ev_count = 0;
    ev_log = [];
  }

(* Evaluate a point; memoized points are free, fresh ones consume one
   budget unit.  Raises [Budget_exhausted] instead of evaluating past
   the budget — strategies catch it and return their best-so-far. *)
let evaluate ev pt =
  let key = Knobs.point_key pt in
  match Hashtbl.find_opt ev.ev_memo key with
  | Some cost -> cost
  | None ->
      if ev.ev_count >= ev.ev_budget then raise Budget_exhausted;
      let c = Knobs.decode ev.ev_space pt in
      let cost = Cost_oracle.eval ev.ev_oracle c in
      let e =
        { e_index = ev.ev_count; e_point = Array.copy pt;
          e_candidate = c; e_cost = cost }
      in
      ev.ev_count <- ev.ev_count + 1;
      ev.ev_log <- e :: ev.ev_log;
      Hashtbl.replace ev.ev_memo key cost;
      if Trace.active () then
        Trace.emit_span ~track:"tune"
          ~args:
            [ ("cost", Trace.Float cost);
              ("config", Trace.String (Knobs.to_string c)) ]
          (Printf.sprintf "tune.eval.%d" e.e_index)
          ~ts_us:(float_of_int e.e_index) ~dur_us:cost;
      cost

let try_evaluate ev pt = try Some (evaluate ev pt) with Budget_exhausted -> None

(* ------------------------------ grid ------------------------------ *)

(* Mixed-radix increment; returns false on wrap-around. *)
let next_point axes pt =
  let rec go i =
    if i < 0 then false
    else begin
      pt.(i) <- pt.(i) + 1;
      if pt.(i) < axes.(i) then true
      else begin
        pt.(i) <- 0;
        go (i - 1)
      end
    end
  in
  go (Array.length axes - 1)

(* Exhaustive when the lattice fits the budget; otherwise a seeded
   uniform sample of the lattice (validity-rejected), which keeps the
   sweep deterministic without materialising an infeasible product. *)
let grid ev rng =
  let sp = ev.ev_space in
  let axes = Knobs.axes sp in
  if Knobs.cardinality sp <= ev.ev_budget then begin
    let pt = Array.make (Array.length axes) 0 in
    let continue = ref true in
    while !continue do
      (if Knobs.valid_point sp pt then
         match try_evaluate ev pt with
         | Some _ -> ()
         | None -> continue := false);
      if !continue && not (next_point axes pt) then continue := false
    done
  end
  else begin
    ignore (try_evaluate ev (Knobs.default_point sp));
    let continue = ref true in
    while !continue && ev.ev_count < ev.ev_budget do
      match try_evaluate ev (Knobs.sample_point sp rng) with
      | Some _ -> ()
      | None -> continue := false
    done
  end

(* ----------------------------- greedy ----------------------------- *)

(* Coordinate descent from the default point: sweep the axes in
   order, trying every value of one axis with the others fixed; move
   to the best improving value; repeat until a full sweep improves
   nothing (or the budget runs out). *)
let greedy ev =
  let sp = ev.ev_space in
  let axes = Knobs.axes sp in
  let current = ref (Knobs.default_point sp) in
  let current_cost = ref (evaluate ev !current) in
  (try
     let improved = ref true in
     while !improved do
       improved := false;
       Array.iteri
         (fun d n ->
           let best_v = ref !current.(d) and best_c = ref !current_cost in
           for v = 0 to n - 1 do
             if v <> !current.(d) then begin
               let pt = Array.copy !current in
               pt.(d) <- v;
               if Knobs.valid_point sp pt then
                 match try_evaluate ev pt with
                 | Some c when c < !best_c ->
                     best_c := c;
                     best_v := v
                 | _ -> ()
             end
           done;
           if !best_v <> !current.(d) then begin
             let pt = Array.copy !current in
             pt.(d) <- !best_v;
             current := pt;
             current_cost := !best_c;
             improved := true
           end)
         axes
     done
   with Budget_exhausted -> ())

(* ----------------------------- evolve ----------------------------- *)

let evolve ev rng =
  let sp = ev.ev_space in
  let pop_size = 8 and elite = 4 and max_gens = 64 in
  let score pt = (evaluate ev pt, pt) in
  try
    let pop =
      ref
        (List.map score
           (Knobs.default_point sp
           :: List.init (pop_size - 1) (fun _ -> Knobs.sample_point sp rng)))
    in
    for _gen = 1 to max_gens do
      let sorted =
        List.sort (fun (a, _) (b, _) -> compare a b) !pop
      in
      let parents =
        List.filteri (fun i _ -> i < elite) sorted |> List.map snd
      in
      let parent () = List.nth parents (Rng.int rng elite) in
      let children =
        List.init (pop_size - elite) (fun _ ->
            let child = Knobs.crossover rng (parent ()) (parent ()) in
            let child = Knobs.mutate sp rng child in
            if Knobs.valid_point sp child then child
            else Knobs.sample_point sp rng)
      in
      pop :=
        List.filteri (fun i _ -> i < elite) sorted @ List.map score children
    done
  with Budget_exhausted -> ()

(* ------------------------------ run ------------------------------- *)

let run ?(seed = 2024) strategy ~budget space oracle =
  if budget < 1 then invalid_arg "Search.run: budget must be >= 1";
  let ev = evaluator space oracle budget in
  let rng = Rng.create seed in
  (* the default point is always evaluation 0, so the reported best is
     never worse than the untuned configuration *)
  ignore (evaluate ev (Knobs.default_point space));
  (match strategy with
  | Grid -> grid ev rng
  | Greedy -> greedy ev
  | Evolve -> evolve ev rng);
  let evals = List.rev ev.ev_log in
  let default_eval = List.hd evals in
  let best =
    List.fold_left
      (fun acc e -> if e.e_cost < acc.e_cost then e else acc)
      default_eval evals
  in
  {
    r_strategy = strategy;
    r_seed = seed;
    r_budget = budget;
    r_evals = evals;
    r_best = best;
    r_default = default_eval;
  }
