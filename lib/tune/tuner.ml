(* The tuner's front door: wire a program to a space, an oracle and a
   strategy, run the search, persist the winner. *)

type oracle_kind = Sim | Measure

let oracle_kind_name = function Sim -> "sim" | Measure -> "measure"

let oracle_kind_of_name = function
  | "sim" -> Some Sim
  | "measure" -> Some Measure
  | _ -> None

type report = {
  rp_program : string;
  rp_key : string;
  rp_device : Device.t;
  rp_oracle : oracle_kind;
  rp_space : Knobs.space;
  rp_result : Search.result;
  rp_db_path : string option;  (** where the record persisted, if disk *)
}

(* Random inputs from a program's declared types (the same shapes ftc
   run uses; the seed is fixed so measured costs are comparable across
   candidates). *)
let rec random_value rng (ty : Expr.ty) : Fractal.t =
  match ty with
  | Expr.Tensor_ty s -> Fractal.Leaf (Tensor.scale 0.3 (Tensor.rand rng s))
  | Expr.List_ty (n, inner) ->
      Fractal.tabulate n (fun _ -> random_value rng inner)
  | Expr.Tuple_ty ts ->
      Fractal.Node (Array.of_list (List.map (random_value rng) ts))

(* Measured cost of one candidate, in milliseconds: simulated device
   time of the candidate's plan plus wall-clock of the compiled
   executor running the graph in wavefront order under the candidate's
   chunk knob.  The simulator reacts to the tile/collapse knobs, the
   executor to the chunk knob; their sum makes every axis observable.
   Preparation (lowering, arena layout) happens outside the timed
   region — the knob under test governs the steady state, not the
   one-time compile. *)
let measure_runner ~device ~plan_of ~graph ~env (c : Knobs.candidate) =
  let sim_ms = Executor.time_ms ~device (plan_of c) in
  let tile = c.Knobs.c_tile in
  let pr =
    Executor.prepare
      ~opts:
        {
          Run_opts.default with
          Run_opts.chunk = Some tile.Tile.cfg_vm_chunk;
          fuse = tile.Tile.cfg_fuse;
          pack = tile.Tile.cfg_pack;
        }
      graph
  in
  let t0 = Unix.gettimeofday () in
  ignore (Executor.execute pr env);
  let vm_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  sim_ms +. vm_ms

let tune ?(device = Device.a100) ?(seed = 2024) ?(strategy = Search.Grid)
    ?(budget = 32) ?(oracle = Sim) ~key (p : Expr.program) =
  let base_plan = Pipeline.plan p in
  let space = Knobs.of_plan ~device base_plan in
  let plan_of (c : Knobs.candidate) =
    Pipeline.plan ~verify:false ~collapse_reuse:c.Knobs.c_collapse
      ~tile:c.Knobs.c_tile p
  in
  let orc =
    match oracle with
    | Sim -> Cost_oracle.analytical ~device plan_of
    | Measure ->
        let graph = Build.build p in
        let rng = Rng.create seed in
        let env =
          List.map (fun (x, t) -> (x, random_value rng t)) p.Expr.inputs
        in
        Cost_oracle.measured (measure_runner ~device ~plan_of ~graph ~env)
  in
  let result = Search.run ~seed strategy ~budget space orc in
  let best = result.Search.r_best in
  let dev_digest = Tune_db.device_digest device in
  Tune_db.store
    {
      Tune_db.tr_key = key;
      tr_device = dev_digest;
      tr_tile = best.Search.e_candidate.Knobs.c_tile;
      tr_collapse = best.Search.e_candidate.Knobs.c_collapse;
      tr_cost = best.Search.e_cost;
      tr_oracle = Cost_oracle.name orc;
      tr_strategy = Search.strategy_name strategy;
      tr_budget = budget;
      tr_seed = seed;
    };
  {
    rp_program = p.Expr.name;
    rp_key = key;
    rp_device = device;
    rp_oracle = oracle;
    rp_space = space;
    rp_result = result;
    rp_db_path = Tune_db.entry_path ~key ~device:dev_digest;
  }

let tune_program ?device ?seed ?strategy ?budget ?oracle (p : Expr.program) =
  tune ?device ?seed ?strategy ?budget ?oracle ~key:(Pipeline.program_key p) p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tune_file ?device ?seed ?strategy ?budget ?oracle path =
  let src = read_file path in
  let p = Parse.program src in
  ignore (Typecheck.check_program p);
  tune ?device ?seed ?strategy ?budget ?oracle ~key:(Pipeline.source_key src) p

(* ----------------------------- reports ----------------------------- *)

let config_to_jsonv (c : Knobs.candidate) =
  let t = c.Knobs.c_tile in
  Jsonw.Obj
    [
      ( "tiles",
        Jsonw.List
          (List.map
             (fun (blk, (tl : Tile.tiles)) ->
               Jsonw.Obj
                 [
                   ("block", Jsonw.String blk);
                   ("tile_m", Jsonw.Int tl.Tile.t_m);
                   ("tile_n", Jsonw.Int tl.Tile.t_n);
                   ("tile_k", Jsonw.Int tl.Tile.t_k);
                 ])
             t.Tile.cfg_tiles) );
      ("elem_chunk", Jsonw.Int t.Tile.cfg_elem_chunk);
      ("vm_chunk", Jsonw.Int t.Tile.cfg_vm_chunk);
      ("fuse", Jsonw.Bool t.Tile.cfg_fuse);
      ( "pack",
        match t.Tile.cfg_pack with
        | Some { Tensor.mc; kc; nc } ->
            Jsonw.Obj
              [
                ("mc", Jsonw.Int mc);
                ("kc", Jsonw.Int kc);
                ("nc", Jsonw.Int nc);
              ]
        | None -> Jsonw.Null );
      ("collapse_reuse", Jsonw.Bool c.Knobs.c_collapse);
      ("pretty", Jsonw.String (Knobs.to_string c));
    ]

let report_to_jsonv (r : report) =
  let res = r.rp_result in
  let default_cost = res.Search.r_default.Search.e_cost in
  let best_cost = res.Search.r_best.Search.e_cost in
  Jsonw.Obj
    [
      ("program", Jsonw.String r.rp_program);
      ("key", Jsonw.String r.rp_key);
      ("device", Jsonw.String r.rp_device.Device.name);
      ("oracle", Jsonw.String (oracle_kind_name r.rp_oracle));
      ("strategy", Jsonw.String (Search.strategy_name res.Search.r_strategy));
      ("seed", Jsonw.Int res.Search.r_seed);
      ("budget", Jsonw.Int res.Search.r_budget);
      ("evaluations", Jsonw.Int (List.length res.Search.r_evals));
      ("space_sites", Jsonw.Int (List.length r.rp_space.Knobs.s_sites));
      ("space_cardinality", Jsonw.Int (Knobs.cardinality r.rp_space));
      ("default_cost", Jsonw.Float default_cost);
      ("best_cost", Jsonw.Float best_cost);
      ( "speedup",
        Jsonw.Float (if best_cost > 0. then default_cost /. best_cost else 1.)
      );
      ("best_config", config_to_jsonv res.Search.r_best.Search.e_candidate);
      ( "trajectory",
        Jsonw.List
          (List.map
             (fun (e : Search.eval) ->
               Jsonw.Obj
                 [
                   ("eval", Jsonw.Int e.Search.e_index);
                   ("cost", Jsonw.Float e.Search.e_cost);
                   ( "config",
                     Jsonw.String (Knobs.to_string e.Search.e_candidate) );
                 ])
             res.Search.r_evals) );
      ( "db_path",
        match r.rp_db_path with
        | Some p -> Jsonw.String p
        | None -> Jsonw.Null );
    ]

let report_to_text (r : report) =
  let b = Buffer.create 512 in
  let res = r.rp_result in
  let default_cost = res.Search.r_default.Search.e_cost in
  let best = res.Search.r_best in
  Printf.bprintf b "program:  %s\n" r.rp_program;
  Printf.bprintf b "key:      %s\n" r.rp_key;
  Printf.bprintf b "device:   %s\n" r.rp_device.Device.name;
  Printf.bprintf b "space:    %d gemm site(s), %d lattice points\n"
    (List.length r.rp_space.Knobs.s_sites)
    (Knobs.cardinality r.rp_space);
  Printf.bprintf b "search:   %s, oracle %s, budget %d, seed %d\n"
    (Search.strategy_name res.Search.r_strategy)
    (oracle_kind_name r.rp_oracle) res.Search.r_budget res.Search.r_seed;
  Printf.bprintf b "evals:    %d (distinct configurations)\n"
    (List.length res.Search.r_evals);
  Printf.bprintf b "default:  %.3f\n" default_cost;
  Printf.bprintf b "best:     %.3f  (%.2fx)  %s\n" best.Search.e_cost
    (if best.Search.e_cost > 0. then default_cost /. best.Search.e_cost
     else 1.)
    (Knobs.to_string best.Search.e_candidate);
  Buffer.add_string b "trajectory:\n";
  List.iter
    (fun (e : Search.eval) ->
      Printf.bprintf b "  %3d  %12.3f  %s\n" e.Search.e_index e.Search.e_cost
        (Knobs.to_string e.Search.e_candidate))
    res.Search.r_evals;
  (match r.rp_db_path with
  | Some p -> Printf.bprintf b "db:       %s\n" p
  | None ->
      Printf.bprintf b "db:       in-memory only (set %s to persist)\n"
        Tune_db.env_var);
  Buffer.contents b
