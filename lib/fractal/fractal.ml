type t =
  | Leaf of Tensor.t
  | Node of t array

let leaf t = Leaf t

let node = function
  | [] -> invalid_arg "Fractal.node: empty list"
  | elems -> Node (Array.of_list elems)

let of_tensors ts =
  match ts with
  | [] -> invalid_arg "Fractal.of_tensors: empty list"
  | first :: rest ->
      let s = Tensor.shape first in
      List.iter
        (fun t ->
          if not (Shape.equal (Tensor.shape t) s) then
            invalid_arg "Fractal.of_tensors: leaf shape mismatch")
        rest;
      Node (Array.of_list (List.map leaf ts))

let tabulate n f =
  if n < 1 then invalid_arg "Fractal.tabulate: non-positive length";
  Node (Array.init n f)

let rec rand rng ~dims ~elem =
  match dims with
  | [] -> Leaf (Tensor.rand rng elem)
  | d :: rest -> tabulate d (fun _ -> rand rng ~dims:rest ~elem)

let rec depth = function
  | Leaf _ -> 0
  | Node elems ->
      1 + Array.fold_left (fun acc e -> Stdlib.max acc (depth e)) 0 elems

let length = function
  | Leaf _ -> invalid_arg "Fractal.length: leaf has no list dimension"
  | Node elems -> Array.length elems

let get t i =
  match t with
  | Leaf _ -> invalid_arg "Fractal.get: leaf has no elements"
  | Node elems ->
      if i < 0 || i >= Array.length elems then
        invalid_arg (Printf.sprintf "Fractal.get: index %d out of range" i);
      elems.(i)

let children = function
  | Leaf _ -> invalid_arg "Fractal.children: leaf has no elements"
  | Node elems -> elems

let to_list t = Array.to_list (children t)

let as_leaf = function
  | Leaf t -> t
  | Node _ -> invalid_arg "Fractal.as_leaf: value is a node"

let rec fold_leaves f acc = function
  | Leaf t -> f acc t
  | Node elems -> Array.fold_left (fold_leaves f) acc elems

let leaves t = List.rev (fold_leaves (fun acc x -> x :: acc) [] t)

let elem_shape t =
  match leaves t with
  | [] -> invalid_arg "Fractal.elem_shape: no leaves"
  | first :: _ -> Tensor.shape first

let is_regular t =
  let rec check t =
    (* Returns (depth, extents) or None when irregular. *)
    match t with
    | Leaf _ -> Some (0, [])
    | Node elems -> (
        match check elems.(0) with
        | None -> None
        | Some (d0, ext0) ->
            let ok =
              Array.for_all
                (fun e ->
                  match check e with
                  | Some (d, ext) -> d = d0 && ext = ext0
                  | None -> false)
                elems
            in
            if ok then Some (d0 + 1, Array.length elems :: ext0) else None)
  in
  match check t with
  | None -> false
  | Some _ -> (
      match leaves t with
      | [] -> false
      | first :: rest ->
          let s = Tensor.shape first in
          List.for_all (fun x -> Shape.equal (Tensor.shape x) s) rest)

let rec extents = function
  | Leaf _ -> []
  | Node elems -> Array.length elems :: extents elems.(0)

let rec equal_approx ?(eps = 1e-4) a b =
  match (a, b) with
  | Leaf x, Leaf y -> Tensor.equal_approx ~eps x y
  | Node xs, Node ys ->
      Array.length xs = Array.length ys
      && Array.for_all2 (fun x y -> equal_approx ~eps x y) xs ys
  | Leaf _, Node _ | Node _, Leaf _ -> false

let rec equal_exact a b =
  match (a, b) with
  | Leaf x, Leaf y -> Tensor.equal_bits x y
  | Node xs, Node ys ->
      Array.length xs = Array.length ys && Array.for_all2 equal_exact xs ys
  | Leaf _, Node _ | Node _, Leaf _ -> false

let rec map_leaves f = function
  | Leaf t -> Leaf (f t)
  | Node elems -> Node (Array.map (map_leaves f) elems)

let numel t = fold_leaves (fun acc x -> acc + Tensor.numel x) 0 t

let rec pp fmt = function
  | Leaf t -> Tensor.pp fmt t
  | Node elems ->
      let n = Array.length elems in
      let shown = if n <= 4 then n else 3 in
      Format.fprintf fmt "@[<hov 1>[%d|" n;
      for i = 0 to shown - 1 do
        if i > 0 then Format.fprintf fmt ";@ ";
        pp fmt elems.(i)
      done;
      if shown < n then Format.fprintf fmt ";@ …";
      Format.fprintf fmt "]@]"

let to_string t = Format.asprintf "%a" pp t
