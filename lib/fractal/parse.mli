(** Concrete syntax for FractalTensor programs.

    A textual form of the paper's Appendix-A abstract syntax, close to
    the listings.  The running example (Listing 1):

    {v
    program stacked_rnn
    input xss: [2][4]f32[1,8]
    input ws:  [3]f32[8,8]
    return xss.map { |xs|
      ws.scanl(xs) { |sbar, w|
        sbar.scanl(zeros[1,8]) { |s, x|
          x @ w + s } } }
    v}

    Grammar sketch:

    {v
    program  ::= "program" IDENT input* "return" expr
    input    ::= "input" IDENT ":" type
    type     ::= ("[" INT "]")* "f32" "[" INT {"," INT} "]"
    expr     ::= "let" IDENT "=" expr "in" expr | sum
    sum      ::= product (("+" | "-") product)*
    product  ::= matmul (("*" | "/") matmul)*
    matmul   ::= postfix (("@" | "@T") postfix)*
    postfix  ::= atom
               | postfix "." soac ["(" expr ")"] "{" "|" params "|" expr "}"
               | postfix "." access "(" args ")"
               | postfix "[" INT "]"          (static indexing)
               | postfix "." INT              (tuple projection)
    atom     ::= IDENT | call | "zeros" shape | "full" shape "(" FLOAT ")"
               | "zip(" expr {"," expr} ")" | "(" expr {"," expr} ")"
    call     ::= ("tanh"|"sigmoid"|"exp"|"neg"|"relu"|"softmax"|"rowmax"
               |"rowsum"|"transpose"|"max"|"scale"|"cols"|"concat_cols")
                 "(" args ")"
    soac     ::= "map"|"reduce"|"foldl"|"foldr"|"scanl"|"scanr"
    access   ::= "slice"|"window"|"stride"|"shifted_slide"|"interleave"
               |"linear"|"reverse"|"gather"
    v}

    [linear(shift)] is forward contiguous access; [linear(shift, 1)]
    additionally reverses the selected suffix and [reverse()] is
    shorthand for [linear(0, 1)].  [gather(i, ...)] is indirect access
    through the literal index list.

    [@T] is transposed matmul ([q @T k] = [q @ kᵀ]). *)

exception Syntax_error of { line : int; col : int; message : string }

val program : string -> Expr.program
(** Parse a whole program. @raise Syntax_error with position info. *)

val expr : string -> Expr.t
(** Parse a single expression (for tests and the toplevel). *)

val program_file : string -> Expr.program
(** Parse from a file path. @raise Sys_error on IO failure. *)

(** {1 Source spans}

    The linter needs source positions without burdening [Expr.t] with
    location fields, so the spanned entry points additionally return a
    side table keyed by {e physical identity} of the freshly parsed
    nodes: the table is only meaningful for the AST returned alongside
    it. *)

type span = { sp_line : int; sp_col : int }

type spans

val expr_span : spans -> Expr.t -> span option
(** Source position of a node of the parsed AST (physical identity). *)

val binder_spans : spans -> Expr.t -> (string * span) list
(** For a [Let] or [Soac] node: the positions of the names it binds
    ([let x = …] / lambda parameters), in declaration order. *)

val input_spans : spans -> (string * span) list
(** Positions of the program's [input] declarations, in order. *)

val program_spanned : string -> Expr.program * spans
(** As {!program}, with the span table. *)

val program_file_spanned : string -> Expr.program * spans
(** As {!program_file}, with the span table. *)
