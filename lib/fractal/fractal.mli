(** The FractalTensor abstract data type (paper §4.1).

    A FractalTensor is a linearly ordered list whose elements are either
    statically-shaped tensors or other FractalTensors.  Depth is fixed
    once constructed: a depth-[d] value is a [d]-deep nest of lists over
    tensor leaves.  Math is defined only on leaves; the enclosing
    "programmable dimensions" are traversed exclusively by the compute
    operators in {!Soac} and the access operators in {!Access}.

    Tuples produced by [zip] and by multi-result scans are represented
    as nodes too; {!is_regular} distinguishes genuine FractalTensors
    (uniform depth and leaf shape) from such transient tuple values. *)

type t =
  | Leaf of Tensor.t
  | Node of t array

(** {1 Construction} *)

val leaf : Tensor.t -> t

val node : t list -> t
(** @raise Invalid_argument on an empty list. *)

val of_tensors : Tensor.t list -> t
(** Depth-1 FractalTensor from a list of same-shaped tensors.
    @raise Invalid_argument on empty input or shape mismatch. *)

val tabulate : int -> (int -> t) -> t
(** [tabulate n f] is the depth+1 node [[f 0; …; f (n-1)]].
    @raise Invalid_argument if [n < 1]. *)

val rand : Rng.t -> dims:int list -> elem:Shape.t -> t
(** Regular random FractalTensor with programmable extents [dims] over
    uniform leaves of shape [elem].  [dims = []] gives a bare leaf. *)

(** {1 Observation} *)

val depth : t -> int
(** 0 for a leaf; [1 + max (depth children)] for a node. *)

val length : t -> int
(** Number of elements of the outermost list.
    @raise Invalid_argument on a leaf. *)

val get : t -> int -> t
(** @raise Invalid_argument on a leaf or out-of-range index. *)

val children : t -> t array
(** The outermost elements (not a copy). @raise Invalid_argument on a leaf. *)

val to_list : t -> t list

val as_leaf : t -> Tensor.t
(** @raise Invalid_argument on a node. *)

val leaves : t -> Tensor.t list
(** All leaves, left to right. *)

val is_regular : t -> bool
(** True when every level has uniform child depth/extent and all leaves
    share one shape — i.e. the value is a well-formed FractalTensor. *)

val elem_shape : t -> Shape.t
(** Shape of the first leaf. *)

val extents : t -> int list
(** Programmable extents, outermost first ([[]] for a leaf).  Only
    meaningful on regular values. *)

(** {1 Comparison and printing} *)

val equal_approx : ?eps:float -> t -> t -> bool
(** Structural equality with {!Tensor.equal_approx} at the leaves. *)

val equal_exact : t -> t -> bool
(** Structural equality with {!Tensor.equal_bits} at the leaves —
    the bitwise check behind the sequential-vs-parallel differential
    tests: not "close enough", {e the same floats}. *)

val map_leaves : (Tensor.t -> Tensor.t) -> t -> t

val fold_leaves : ('a -> Tensor.t -> 'a) -> 'a -> t -> 'a

val numel : t -> int
(** Total scalar element count over all leaves. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
