exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let normalize_col n i = if i < 0 then n + i else i

let dims2 name s =
  if Shape.rank s <> 2 then err "%s: expected rank-2 tensor, got %s" name
      (Shape.to_string s);
  (Shape.dim s 0, Shape.dim s 1)

(* The broadcast result of two shapes under Tensor.map2's rules. *)
let broadcast_shape name a b =
  if Shape.equal a b then a
  else if Shape.rank a = 0 then b
  else if Shape.rank b = 0 then a
  else if Shape.rank a = 2 && Shape.rank b = 2 then begin
    let ma, na = dims2 name a and mb, nb = dims2 name b in
    if ma = mb && nb = 1 then a
    else if ma = mb && na = 1 then b
    else if na = nb && mb = 1 then a
    else if na = nb && ma = 1 then b
    else
      err "%s: incompatible shapes %s and %s" name (Shape.to_string a)
        (Shape.to_string b)
  end
  else
    err "%s: incompatible shapes %s and %s" name (Shape.to_string a)
      (Shape.to_string b)

let prim_result_shape (p : Expr.prim) (shapes : Shape.t list) =
  let name = Expr.prim_name p in
  let unary () =
    match shapes with
    | [ s ] -> s
    | _ -> err "%s: expected 1 operand" name
  in
  let binary () =
    match shapes with
    | [ a; b ] -> (a, b)
    | _ -> err "%s: expected 2 operands" name
  in
  match p with
  | Expr.Matmul ->
      let a, b = binary () in
      let m, k = dims2 name a and k', n = dims2 name b in
      if k <> k' then err "%s: inner dims %d vs %d" name k k';
      Shape.of_array [| m; n |]
  | Expr.Matmul_t ->
      let a, b = binary () in
      let m, k = dims2 name a and n, k' = dims2 name b in
      if k <> k' then err "%s: inner dims %d vs %d" name k k';
      Shape.of_array [| m; n |]
  | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Maximum ->
      let a, b = binary () in
      broadcast_shape name a b
  | Expr.Tanh | Expr.Sigmoid | Expr.Exp | Expr.Neg | Expr.Relu
  | Expr.Softmax | Expr.Scale _ ->
      unary ()
  | Expr.Row_max | Expr.Row_sum ->
      let m, _ = dims2 name (unary ()) in
      Shape.of_array [| m; 1 |]
  | Expr.Transpose ->
      let m, n = dims2 name (unary ()) in
      Shape.of_array [| n; m |]
  | Expr.Cols (lo, hi) ->
      let m, n = dims2 name (unary ()) in
      let lo = normalize_col n lo and hi = normalize_col n hi in
      if lo < 0 || hi > n || lo >= hi then
        err "%s: empty column range on %d columns" name n;
      Shape.of_array [| m; hi - lo |]
  | Expr.Concat_cols -> (
      match shapes with
      | [] -> err "%s: expected at least 1 operand" name
      | first :: _ ->
          let m, _ = dims2 name first in
          let total =
            List.fold_left
              (fun acc s ->
                let m', n = dims2 name s in
                if m' <> m then err "%s: row mismatch" name;
                acc + n)
              0 shapes
          in
          Shape.of_array [| m; total |])

let access_result (a : Expr.access) (ty : Expr.ty) =
  let n, elem =
    match ty with
    | Expr.List_ty (n, elem) -> (n, elem)
    | _ -> err "access operator applied to a non-list value"
  in
  match a with
  | Expr.Linear { shift; reverse = _ } ->
      if shift < 0 || shift >= n then err "linear: shift %d out of %d" shift n;
      Expr.List_ty (n - shift, elem)
  | Expr.Strided { start; step } ->
      if step < 1 then err "stride: step must be >= 1";
      if start < 0 || start >= n then err "stride: bad start %d" start;
      Expr.List_ty (1 + ((n - 1 - start) / step), elem)
  | Expr.Windowed { size; stride; dilation } ->
      let span = ((size - 1) * dilation) + 1 in
      if span > n then err "window: span %d exceeds extent %d" span n;
      Expr.List_ty (((n - span) / stride) + 1, Expr.List_ty (size, elem))
  | Expr.Shifted_slide { window } ->
      if window > n then err "shifted_slide: window %d exceeds extent %d" window n;
      Expr.List_ty (n, Expr.List_ty (window, elem))
  | Expr.Slice { lo; hi } ->
      let lo = normalize_col n lo and hi = normalize_col n hi in
      if lo < 0 || hi > n || lo >= hi then err "slice: empty range";
      Expr.List_ty (hi - lo, elem)
  | Expr.Indirect idx ->
      Array.iter
        (fun i -> if i < 0 || i >= n then err "indirect: index %d out of %d" i n)
        idx;
      Expr.List_ty (Array.length idx, elem)
  | Expr.Interleave { phases } ->
      if phases < 1 || n mod phases <> 0 then
        err "interleave: %d phases do not divide extent %d" phases n;
      Expr.List_ty (phases, Expr.List_ty (n / phases, elem))

(* Bind SOAC lambda parameters: a k-parameter lambda over a k-tuple
   element destructures it; a 1-parameter lambda binds the element. *)
let bind_elem_params env params (elem : Expr.ty) =
  match (params, elem) with
  | [ p ], _ -> (p, elem) :: env
  | ps, Expr.Tuple_ty ts when List.length ps = List.length ts ->
      List.combine ps ts @ env
  | ps, _ ->
      err "lambda takes %d element parameters but the element is %s"
        (List.length ps)
        (Expr.ty_to_string elem)

(* Internal: a [Type_error] annotated with the innermost expression
   being checked when it was raised.  Never escapes this module's plain
   entry points; the [_located] variants surface it for diagnostics. *)
exception Located of Expr.t * string

let rec infer env (e : Expr.t) : Expr.ty =
  try infer_node env e with Type_error msg -> raise (Located (e, msg))

and infer_node env (e : Expr.t) : Expr.ty =
  match e with
  | Expr.Var v -> (
      match List.assoc_opt v env with
      | Some ty -> ty
      | None -> err "unbound variable %s" v)
  | Expr.Lit t -> Expr.Tensor_ty (Tensor.shape t)
  | Expr.Tuple es -> Expr.Tuple_ty (List.map (infer env) es)
  | Expr.Proj (e, i) -> (
      match infer env e with
      | Expr.Tuple_ty ts when i >= 0 && i < List.length ts -> List.nth ts i
      | ty -> err "projection .%d on %s" i (Expr.ty_to_string ty))
  | Expr.Prim (p, es) ->
      let shapes =
        List.map
          (fun e ->
            match infer env e with
            | Expr.Tensor_ty s -> s
            | ty ->
                err "primitive %s applied to non-tensor %s" (Expr.prim_name p)
                  (Expr.ty_to_string ty))
          es
      in
      Expr.Tensor_ty (prim_result_shape p shapes)
  | Expr.Access (a, e) -> access_result a (infer env e)
  | Expr.Zip es -> (
      match List.map (infer env) es with
      | [] -> err "zip of nothing"
      | (Expr.List_ty (n, _) :: _) as tys ->
          let elems =
            List.map
              (function
                | Expr.List_ty (n', elem) when n' = n -> elem
                | Expr.List_ty (n', _) ->
                    err "zip: extents %d and %d differ" n n'
                | ty -> err "zip of non-list %s" (Expr.ty_to_string ty))
              tys
          in
          Expr.List_ty (n, Expr.Tuple_ty elems)
      | ty :: _ -> err "zip of non-list %s" (Expr.ty_to_string ty))
  | Expr.Index (e, is) ->
      List.fold_left
        (fun ty i ->
          match ty with
          | Expr.List_ty (n, elem) ->
              let i = normalize_col n i in
              if i < 0 || i >= n then err "index %d out of extent %d" i n;
              elem
          | ty -> err "indexing into %s" (Expr.ty_to_string ty))
        (infer env e) is
  | Expr.Soac s -> infer_soac env s
  | Expr.Let (x, e1, e2) -> infer ((x, infer env e1) :: env) e2

and infer_soac env { Expr.kind; fn; init; xs } =
  let xs_ty = infer env xs in
  let n, elem =
    match xs_ty with
    | Expr.List_ty (n, elem) -> (n, elem)
    | ty ->
        err "%s applied to non-list %s" (Expr.soac_kind_name kind)
          (Expr.ty_to_string ty)
  in
  match kind with
  | Expr.Map ->
      let env' = bind_elem_params env fn.params elem in
      Expr.List_ty (n, infer env' fn.body)
  | Expr.Reduce | Expr.Foldl | Expr.Foldr | Expr.Scanl | Expr.Scanr -> (
      let state_ty =
        match init with
        | Some e -> infer env e
        | None -> elem
      in
      match fn.params with
      | [] -> err "%s: lambda needs a state parameter" (Expr.soac_kind_name kind)
      | state :: elem_params ->
          let env' =
            bind_elem_params ((state, state_ty) :: env)
              (if elem_params = [] then [ "_unused_elem" ] else elem_params)
              elem
          in
          let body_ty = infer env' fn.body in
          if body_ty <> state_ty then
            err "%s: step returns %s but the carried state is %s"
              (Expr.soac_kind_name kind)
              (Expr.ty_to_string body_ty)
              (Expr.ty_to_string state_ty);
          (match kind with
          | Expr.Scanl | Expr.Scanr -> Expr.List_ty (n, state_ty)
          | Expr.Reduce | Expr.Foldl | Expr.Foldr -> state_ty
          | Expr.Map -> assert false))

let infer_located env e =
  match infer env e with
  | ty -> Ok ty
  | exception Located (at, msg) -> Error (Some at, msg)
  | exception Type_error msg -> Error (None, msg)

let infer env e =
  try infer env e with Located (_, msg) -> raise (Type_error msg)

let check_program (p : Expr.program) = infer p.inputs p.body

let check_program_located (p : Expr.program) = infer_located p.inputs p.body
