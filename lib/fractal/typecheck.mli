(** Shape and depth inference for frontend programs (paper §4.3:
    "the shape of the final resulting FractalTensor can be inferred
    through shape inference").

    Every programmable extent is concrete at check time — exactly the
    situation of the paper's tracer, which sees actual FractalTensor
    instances.  The checker rejects programs that would fail at run
    time: rank/shape mismatches in primitive math, zip length
    mismatches, aggregate state/element confusion, unbound variables. *)

exception Type_error of string

val infer : (string * Expr.ty) list -> Expr.t -> Expr.ty
(** [infer env e] is the type of [e] with free variables bound by [env].
    @raise Type_error on ill-typed programs. *)

val check_program : Expr.program -> Expr.ty
(** Infer the result type of a whole program.
    @raise Type_error as {!infer}. *)

val infer_located :
  (string * Expr.ty) list -> Expr.t -> (Expr.ty, Expr.t option * string) result
(** Exception-free inference for diagnostics: on failure, the innermost
    sub-expression being checked when the error arose (matchable against
    a {!Parse.spans} table by physical identity) and the message. *)

val check_program_located :
  Expr.program -> (Expr.ty, Expr.t option * string) result
(** As {!infer_located}, over a whole program. *)

val prim_result_shape : Expr.prim -> Shape.t list -> Shape.t
(** Output shape of a primitive applied to operand shapes — shared with
    the compiler's operation-node lowering.
    @raise Type_error on invalid operands. *)
