exception Unprintable of string

let shape_lit s =
  "["
  ^ String.concat "," (Array.to_list (Array.map string_of_int (Shape.dims s)))
  ^ "]"

(* Numbers must survive a parse round trip: integers print bare,
   everything else with enough digits. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else Printf.sprintf "%.17g" v

let lit t =
  let d = Tensor.data t in
  if Shape.rank (Tensor.shape t) = 0 then number d.(0)
  else
    let v = d.(0) in
    if Array.for_all (fun x -> x = v) d then
      if v = 0.0 then "zeros" ^ shape_lit (Tensor.shape t)
      else if v = 1.0 then "ones" ^ shape_lit (Tensor.shape t)
      else
        Printf.sprintf "full%s(%s)" (shape_lit (Tensor.shape t)) (number v)
    else raise (Unprintable "non-uniform literal tensor")

(* Precedence levels: 0 = let, 1 = sum, 2 = product, 3 = matmul,
   4 = postfix/atom.  [go level e] parenthesises when [e] binds looser
   than the context requires. *)
let rec go level (e : Expr.t) =
  let prec, printed =
    match e with
    | Expr.Let (x, e1, e2) ->
        (0, Printf.sprintf "let %s = %s in %s" x (go 1 e1) (go 0 e2))
    | Expr.Prim (Expr.Add, [ a; b ]) ->
        (1, Printf.sprintf "%s + %s" (go 1 a) (go 2 b))
    | Expr.Prim (Expr.Sub, [ a; b ]) ->
        (1, Printf.sprintf "%s - %s" (go 1 a) (go 2 b))
    | Expr.Prim (Expr.Mul, [ a; b ]) ->
        (2, Printf.sprintf "%s * %s" (go 2 a) (go 3 b))
    | Expr.Prim (Expr.Div, [ a; b ]) ->
        (2, Printf.sprintf "%s / %s" (go 2 a) (go 3 b))
    | Expr.Prim (Expr.Matmul, [ a; b ]) ->
        (3, Printf.sprintf "%s @ %s" (go 3 a) (go 4 b))
    | Expr.Prim (Expr.Matmul_t, [ a; b ]) ->
        (3, Printf.sprintf "%s @T %s" (go 3 a) (go 4 b))
    | Expr.Prim (Expr.Maximum, [ a; b ]) ->
        (4, Printf.sprintf "max(%s, %s)" (go 0 a) (go 0 b))
    | Expr.Prim (Expr.Scale k, [ a ]) ->
        (4, Printf.sprintf "scale(%s, %s)" (number k) (go 0 a))
    | Expr.Prim (Expr.Cols (lo, hi), [ a ]) ->
        (4, Printf.sprintf "cols(%d, %d, %s)" lo hi (go 0 a))
    | Expr.Prim (Expr.Concat_cols, es) ->
        (4, Printf.sprintf "concat_cols(%s)"
             (String.concat ", " (List.map (go 0) es)))
    | Expr.Prim (p, [ a ]) ->
        let name =
          match p with
          | Expr.Tanh -> "tanh"
          | Expr.Sigmoid -> "sigmoid"
          | Expr.Exp -> "exp"
          | Expr.Neg -> "neg"
          | Expr.Relu -> "relu"
          | Expr.Softmax -> "softmax"
          | Expr.Row_max -> "rowmax"
          | Expr.Row_sum -> "rowsum"
          | Expr.Transpose -> "transpose"
          | other -> raise (Unprintable (Expr.prim_name other))
        in
        (4, Printf.sprintf "%s(%s)" name (go 0 a))
    | Expr.Prim (p, _) -> raise (Unprintable (Expr.prim_name p))
    | Expr.Var v -> (4, v)
    | Expr.Lit t -> (4, lit t)
    | Expr.Tuple es ->
        (4, Printf.sprintf "(%s)" (String.concat ", " (List.map (go 0) es)))
    | Expr.Zip es ->
        (4, Printf.sprintf "zip(%s)" (String.concat ", " (List.map (go 0) es)))
    | Expr.Proj (e, i) -> (4, Printf.sprintf "%s.%d" (go 4 e) i)
    | Expr.Index (e, is) ->
        ( 4,
          go 4 e
          ^ String.concat ""
              (List.map (fun i -> Printf.sprintf "[%d]" i) is) )
    | Expr.Access (a, e) ->
        let call =
          match a with
          | Expr.Slice { lo; hi } -> Printf.sprintf "slice(%d, %d)" lo hi
          | Expr.Windowed { size; stride; dilation } ->
              Printf.sprintf "window(%d, %d, %d)" size stride dilation
          | Expr.Strided { start; step } ->
              Printf.sprintf "stride(%d, %d)" start step
          | Expr.Shifted_slide { window } ->
              Printf.sprintf "shifted_slide(%d)" window
          | Expr.Interleave { phases } ->
              Printf.sprintf "interleave(%d)" phases
          | Expr.Linear { shift; reverse = false } ->
              Printf.sprintf "linear(%d)" shift
          | Expr.Linear { shift = 0; reverse = true } -> "reverse()"
          | Expr.Linear { shift; reverse = true } ->
              Printf.sprintf "linear(%d, 1)" shift
          | Expr.Indirect idx ->
              Printf.sprintf "gather(%s)"
                (String.concat ", "
                   (Array.to_list (Array.map string_of_int idx)))
        in
        (4, Printf.sprintf "%s.%s" (go 4 e) call)
    | Expr.Soac { kind; fn; init; xs } ->
        let seed =
          match init with
          | None -> ""
          | Some e -> Printf.sprintf "(%s)" (go 0 e)
        in
        ( 4,
          Printf.sprintf "%s.%s%s { |%s| %s }" (go 4 xs)
            (Expr.soac_kind_name kind)
            seed
            (String.concat ", " fn.params)
            (go 0 fn.body) )
  in
  if prec < level then "(" ^ printed ^ ")" else printed

let expr e = go 0 e

let rec ty = function
  | Expr.Tensor_ty s ->
      "f32" ^ shape_lit s
  | Expr.List_ty (n, inner) -> Printf.sprintf "[%d]%s" n (ty inner)
  | Expr.Tuple_ty _ -> raise (Unprintable "tuple type in an input declaration")

let program (p : Expr.program) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" p.Expr.name);
  List.iter
    (fun (x, t) ->
      Buffer.add_string buf (Printf.sprintf "input %s: %s\n" x (ty t)))
    p.Expr.inputs;
  Buffer.add_string buf ("return " ^ expr p.Expr.body ^ "\n");
  Buffer.contents buf
