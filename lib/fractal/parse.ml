exception Syntax_error of { line : int; col : int; message : string }

type span = { sp_line : int; sp_col : int }

(* Spans are keyed by physical identity: every AST node the parser
   constructs is a distinct heap block, so [==] identifies its
   construction site without threading locations through [Expr.t]. *)
type spans = {
  mutable sp_exprs : (Expr.t * span) list;
  mutable sp_binders : (Expr.t * (string * span) list) list;
  mutable sp_inputs : (string * span) list;
}

let spans_empty () = { sp_exprs = []; sp_binders = []; sp_inputs = [] }

let input_spans sp = List.rev sp.sp_inputs

let expr_span sp e =
  List.find_map
    (fun (e', s) -> if e' == e then Some s else None)
    sp.sp_exprs

let binder_spans sp e =
  match
    List.find_map
      (fun (e', bs) -> if e' == e then Some bs else None)
      sp.sp_binders
  with
  | Some bs -> bs
  | None -> []

(* ------------------------------ lexer ------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LBRACKET | RBRACKET | LPAREN | RPAREN | LBRACE | RBRACE
  | COMMA | COLON | DOT | PIPE | EQUALS
  | PLUS | MINUS | STAR | SLASH | AT | ATT (* @T *)
  | EOF

type lexeme = { tok : token; l_line : int; l_col : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and bol = ref 0 in
  let error pos msg =
    raise (Syntax_error { line = !line; col = pos - !bol + 1; message = msg })
  in
  let emit pos tok = out := { tok; l_line = !line; l_col = pos - !bol + 1 } :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit start (IDENT (String.sub src start (!i - start)))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]
                           && (match !out with
                               | { tok = (IDENT _ | INT _ | FLOAT _ | RPAREN
                                         | RBRACKET); _ } :: _ -> false
                               | _ -> true))
    then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit src.[!i] do incr i done;
      let has_frac =
        !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1]
      in
      if has_frac then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let has_exp =
        !i < n
        && (src.[!i] = 'e' || src.[!i] = 'E')
        && !i + 1 < n
        && (is_digit src.[!i + 1]
           || ((src.[!i + 1] = '-' || src.[!i + 1] = '+') && !i + 2 < n
              && is_digit src.[!i + 2]))
      in
      if has_exp then begin
        incr i;
        if !i < n && (src.[!i] = '-' || src.[!i] = '+') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if has_frac || has_exp then
        emit start (FLOAT (float_of_string (String.sub src start (!i - start))))
      else emit start (INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let start = !i in
      (match c with
      | '[' -> emit start LBRACKET
      | ']' -> emit start RBRACKET
      | '(' -> emit start LPAREN
      | ')' -> emit start RPAREN
      | '{' -> emit start LBRACE
      | '}' -> emit start RBRACE
      | ',' -> emit start COMMA
      | ':' -> emit start COLON
      | '.' -> emit start DOT
      | '|' -> emit start PIPE
      | '=' -> emit start EQUALS
      | '+' -> emit start PLUS
      | '-' -> emit start MINUS
      | '*' -> emit start STAR
      | '/' -> emit start SLASH
      | '@' ->
          if !i + 1 < n && src.[!i + 1] = 'T' then begin
            emit start ATT;
            incr i
          end
          else emit start AT
      | _ -> error start (Printf.sprintf "unexpected character %C" c));
      incr i
    end
  done;
  emit n EOF;
  Array.of_list (List.rev !out)

(* ------------------------------ parser ----------------------------- *)

type state = { toks : lexeme array; mutable pos : int; sp : spans }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let span_here st =
  let { l_line; l_col; _ } = peek st in
  { sp_line = l_line; sp_col = l_col }

(* Record [e]'s source span unless an inner production already did
   (a parenthesised expression keeps its own, tighter position). *)
let note st span e =
  if not (List.exists (fun (e', _) -> e' == e) st.sp.sp_exprs) then
    st.sp.sp_exprs <- (e, span) :: st.sp.sp_exprs;
  e

let note_binders st e bs = st.sp.sp_binders <- (e, bs) :: st.sp.sp_binders

let fail st msg =
  let { l_line; l_col; _ } = peek st in
  raise (Syntax_error { line = l_line; col = l_col; message = msg })

let expect st tok what =
  if (peek st).tok = tok then advance st else fail st ("expected " ^ what)

let ident st =
  match (peek st).tok with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected an identifier"

let int_lit st =
  match (peek st).tok with
  | INT v ->
      advance st;
      v
  | _ -> fail st "expected an integer"

let number st =
  match (peek st).tok with
  | INT v ->
      advance st;
      float_of_int v
  | FLOAT v ->
      advance st;
      v
  | _ -> fail st "expected a number"

(* "[2][4]f32[1,8]" *)
let parse_type st =
  let rec outer acc =
    if (peek st).tok = LBRACKET then begin
      advance st;
      let e = int_lit st in
      expect st RBRACKET "']'";
      outer (e :: acc)
    end
    else List.rev acc
  in
  let dims = outer [] in
  (match (peek st).tok with
  | IDENT "f32" -> advance st
  | _ -> fail st "expected 'f32'");
  expect st LBRACKET "'['";
  let rec inner acc =
    let e = int_lit st in
    if (peek st).tok = COMMA then begin
      advance st;
      inner (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let shape = inner [] in
  expect st RBRACKET "']'";
  List.fold_right
    (fun n ty -> Expr.List_ty (n, ty))
    dims
    (Expr.Tensor_ty (Shape.of_list shape))

let parse_shape_lit st =
  expect st LBRACKET "'['";
  let rec go acc =
    let e = int_lit st in
    if (peek st).tok = COMMA then begin
      advance st;
      go (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let dims = go [] in
  expect st RBRACKET "']'";
  Shape.of_list dims

let soac_kind = function
  | "map" -> Some Expr.Map
  | "reduce" -> Some Expr.Reduce
  | "foldl" -> Some Expr.Foldl
  | "foldr" -> Some Expr.Foldr
  | "scanl" -> Some Expr.Scanl
  | "scanr" -> Some Expr.Scanr
  | _ -> None

let rec parse_expr st : Expr.t =
  match (peek st).tok with
  | IDENT "let" ->
      let start = span_here st in
      advance st;
      let xsp = span_here st in
      let x = ident st in
      expect st EQUALS "'='";
      let e1 = parse_expr st in
      (match (peek st).tok with
      | IDENT "in" -> advance st
      | _ -> fail st "expected 'in'");
      let e = Expr.Let (x, e1, parse_expr st) in
      note_binders st e [ (x, xsp) ];
      note st start e
  | _ -> parse_sum st

and parse_sum st =
  let start = span_here st in
  let lhs = parse_product st in
  let rec go lhs =
    match (peek st).tok with
    | PLUS ->
        advance st;
        go (note st start Expr.(Add @@@ [ lhs; parse_product st ]))
    | MINUS ->
        advance st;
        go (note st start Expr.(Sub @@@ [ lhs; parse_product st ]))
    | _ -> lhs
  in
  go lhs

and parse_product st =
  let start = span_here st in
  let lhs = parse_matmul st in
  let rec go lhs =
    match (peek st).tok with
    | STAR ->
        advance st;
        go (note st start Expr.(Mul @@@ [ lhs; parse_matmul st ]))
    | SLASH ->
        advance st;
        go (note st start Expr.(Div @@@ [ lhs; parse_matmul st ]))
    | _ -> lhs
  in
  go lhs

and parse_matmul st =
  let start = span_here st in
  let lhs = parse_postfix st in
  let rec go lhs =
    match (peek st).tok with
    | AT ->
        advance st;
        go (note st start Expr.(Matmul @@@ [ lhs; parse_postfix st ]))
    | ATT ->
        advance st;
        go (note st start Expr.(Matmul_t @@@ [ lhs; parse_postfix st ]))
    | _ -> lhs
  in
  go lhs

and parse_postfix st =
  let start = span_here st in
  let e = note st start (parse_atom st) in
  let rec go e =
    match (peek st).tok with
    | LBRACKET ->
        advance st;
        let i = int_lit st in
        expect st RBRACKET "']'";
        go (note st start (Expr.Index (e, [ i ])))
    | DOT -> (
        advance st;
        match (peek st).tok with
        | INT i ->
            advance st;
            go (note st start (Expr.Proj (e, i)))
        | IDENT name -> (
            let opsp = span_here st in
            advance st;
            match soac_kind name with
            | Some kind -> go (note st opsp (parse_soac st kind e))
            | None -> go (note st opsp (parse_access st name e)))
        | _ -> fail st "expected a method name or projection index")
    | _ -> e
  in
  go e

and parse_soac st kind xs =
  (* optional seed: .scanl(expr) { |params| body } *)
  let init =
    if (peek st).tok = LPAREN then begin
      advance st;
      let e = parse_expr st in
      expect st RPAREN "')'";
      Some e
    end
    else None
  in
  expect st LBRACE "'{'";
  expect st PIPE "'|'";
  let rec params acc =
    let psp = span_here st in
    let p = ident st in
    if (peek st).tok = COMMA then begin
      advance st;
      params ((p, psp) :: acc)
    end
    else List.rev ((p, psp) :: acc)
  in
  let ps = params [] in
  expect st PIPE "'|'";
  let body = parse_expr st in
  expect st RBRACE "'}'";
  (match (kind, init) with
  | Expr.Map, Some _ -> fail st "map takes no seed"
  | _ -> ());
  let e =
    Expr.Soac { kind; fn = { params = List.map fst ps; body }; init; xs }
  in
  note_binders st e ps;
  e

and parse_access st name e =
  let args () =
    expect st LPAREN "'('";
    let rec go acc =
      let v = int_lit st in
      if (peek st).tok = COMMA then begin
        advance st;
        go (v :: acc)
      end
      else List.rev (v :: acc)
    in
    let vs = go [] in
    expect st RPAREN "')'";
    vs
  in
  match name with
  | "slice" -> (
      match args () with
      | [ lo; hi ] -> Expr.Access (Expr.Slice { lo; hi }, e)
      | _ -> fail st "slice(lo, hi)")
  | "window" -> (
      match args () with
      | [ size ] ->
          Expr.Access (Expr.Windowed { size; stride = 1; dilation = 1 }, e)
      | [ size; stride ] ->
          Expr.Access (Expr.Windowed { size; stride; dilation = 1 }, e)
      | [ size; stride; dilation ] ->
          Expr.Access (Expr.Windowed { size; stride; dilation }, e)
      | _ -> fail st "window(size[, stride[, dilation]])")
  | "stride" -> (
      match args () with
      | [ start; step ] -> Expr.Access (Expr.Strided { start; step }, e)
      | _ -> fail st "stride(start, step)")
  | "shifted_slide" -> (
      match args () with
      | [ window ] -> Expr.Access (Expr.Shifted_slide { window }, e)
      | _ -> fail st "shifted_slide(window)")
  | "interleave" -> (
      match args () with
      | [ phases ] -> Expr.Access (Expr.Interleave { phases }, e)
      | _ -> fail st "interleave(phases)")
  | "linear" -> (
      match args () with
      | [ shift ] -> Expr.Access (Expr.Linear { shift; reverse = false }, e)
      | [ shift; rev ] ->
          Expr.Access (Expr.Linear { shift; reverse = rev <> 0 }, e)
      | _ -> fail st "linear(shift[, reverse])")
  | "reverse" ->
      expect st LPAREN "'('";
      expect st RPAREN "')'";
      Expr.Access (Expr.Linear { shift = 0; reverse = true }, e)
  | "gather" -> (
      match args () with
      | [] -> fail st "gather(i, ...)"
      | idx -> Expr.Access (Expr.Indirect (Array.of_list idx), e))
  | other -> fail st (Printf.sprintf "unknown access operator %s" other)

and parse_atom st =
  match (peek st).tok with
  | IDENT "zeros" ->
      advance st;
      Expr.Lit (Tensor.zeros (parse_shape_lit st))
  | IDENT "ones" ->
      advance st;
      Expr.Lit (Tensor.ones (parse_shape_lit st))
  | IDENT "full" ->
      advance st;
      let shape = parse_shape_lit st in
      expect st LPAREN "'('";
      let v = number st in
      expect st RPAREN "')'";
      Expr.Lit (Tensor.full shape v)
  | IDENT "zip" ->
      advance st;
      expect st LPAREN "'('";
      let es = parse_expr_list st in
      expect st RPAREN "')'";
      Expr.Zip es
  | IDENT name when unary_prim name <> None ->
      advance st;
      let p = Option.get (unary_prim name) in
      expect st LPAREN "'('";
      let e = parse_expr st in
      expect st RPAREN "')'";
      Expr.(p @@@ [ e ])
  | IDENT "max" ->
      advance st;
      expect st LPAREN "'('";
      let a = parse_expr st in
      expect st COMMA "','";
      let b = parse_expr st in
      expect st RPAREN "')'";
      Expr.(Maximum @@@ [ a; b ])
  | IDENT "scale" ->
      advance st;
      expect st LPAREN "'('";
      let k = number st in
      expect st COMMA "','";
      let e = parse_expr st in
      expect st RPAREN "')'";
      Expr.(Scale k @@@ [ e ])
  | IDENT "cols" ->
      advance st;
      expect st LPAREN "'('";
      let lo = int_lit st in
      expect st COMMA "','";
      let hi = int_lit st in
      expect st COMMA "','";
      let e = parse_expr st in
      expect st RPAREN "')'";
      Expr.(Cols (lo, hi) @@@ [ e ])
  | IDENT "concat_cols" ->
      advance st;
      expect st LPAREN "'('";
      let es = parse_expr_list st in
      expect st RPAREN "')'";
      Expr.(Concat_cols @@@ es)
  | IDENT v ->
      advance st;
      Expr.Var v
  | INT v ->
      advance st;
      Expr.Lit (Tensor.scalar (float_of_int v))
  | FLOAT v ->
      advance st;
      Expr.Lit (Tensor.scalar v)
  | LPAREN -> (
      advance st;
      let es = parse_expr_list st in
      expect st RPAREN "')'";
      match es with
      | [ e ] -> e
      | es -> Expr.Tuple es)
  | _ -> fail st "expected an expression"

and parse_expr_list st =
  let rec go acc =
    let e = parse_expr st in
    if (peek st).tok = COMMA then begin
      advance st;
      go (e :: acc)
    end
    else List.rev (e :: acc)
  in
  go []

and unary_prim = function
  | "tanh" -> Some Expr.Tanh
  | "sigmoid" -> Some Expr.Sigmoid
  | "exp" -> Some Expr.Exp
  | "neg" -> Some Expr.Neg
  | "relu" -> Some Expr.Relu
  | "softmax" -> Some Expr.Softmax
  | "rowmax" -> Some Expr.Row_max
  | "rowsum" -> Some Expr.Row_sum
  | "transpose" -> Some Expr.Transpose
  | _ -> None

let parse_program st : Expr.program =
  (match (peek st).tok with
  | IDENT "program" -> advance st
  | _ -> fail st "expected 'program'");
  let name = ident st in
  let rec inputs acc =
    match (peek st).tok with
    | IDENT "input" ->
        advance st;
        let xsp = span_here st in
        let x = ident st in
        st.sp.sp_inputs <- (x, xsp) :: st.sp.sp_inputs;
        expect st COLON "':'";
        let ty = parse_type st in
        inputs ((x, ty) :: acc)
    | _ -> List.rev acc
  in
  let ins = inputs [] in
  (match (peek st).tok with
  | IDENT "return" -> advance st
  | _ -> fail st "expected 'return'");
  let body = parse_expr st in
  (match (peek st).tok with
  | EOF -> ()
  | _ -> fail st "trailing input after the program body");
  { Expr.name; inputs = ins; body }

let program src =
  parse_program { toks = lex src; pos = 0; sp = spans_empty () }

let program_spanned src =
  let st = { toks = lex src; pos = 0; sp = spans_empty () } in
  let p = parse_program st in
  (p, st.sp)

let expr src =
  let st = { toks = lex src; pos = 0; sp = spans_empty () } in
  let e = parse_expr st in
  match (peek st).tok with
  | EOF -> e
  | _ -> fail st "trailing input after the expression"

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let program_file path = program (read_file path)
let program_file_spanned path = program_spanned (read_file path)
