(** Pretty-printing programs back to the concrete syntax of {!Parse}.

    [Parse.program (Unparse.program p)] yields a structurally equal
    program for every program in the printable fragment: every access
    operator (including reversed access as [reverse()] /
    [linear(shift, 1)] and indirect access as [gather(i, ...)]), every
    compute operator, and everything the workloads use except
    arbitrary literal tensors, which print as [zeros]/[ones]/[full]
    when uniform and are otherwise rejected.  The conformance
    subsystem ([lib/conform]) leans on this totality: minimized
    failing programs are persisted as replayable [.ft] corpus files.
    The round trip is property-tested. *)

exception Unprintable of string
(** Raised for literal tensors with no concrete-syntax form
    (non-uniform contents). *)

val expr : Expr.t -> string
val ty : Expr.ty -> string
val program : Expr.program -> string
