(** The oracle registry: every way this repo can execute a program.

    A conformance check runs one program, on one set of inputs,
    through every registered back end and demands bitwise-identical
    results ({!Fractal.equal_exact}).  The back ends share almost all
    of their kernel code by construction — the VM evaluates operation
    nodes through [Interp.eval_prim] — so exact equality is the
    correct bar: any difference is a wrong access map, region domain,
    schedule, or cache/tuning leak, never float noise.

    Oracles:
    - ["interp"]   — the reference interpreter (defines semantics);
    - ["vm-seq"]   — the VM in [Sequential] order;
    - ["vm-wave1"] / ["vm-wave2"] / ["vm-wave4"]
                   — the VM in [Wavefront] order on a 1/2/4-domain
                     pool (schedule + parallelism invariance);
    - ["shadow"]   — the VM in [Wavefront] order on a 2-domain pool
                     under the {!Shadow} cell-level recorder: a
                     same-front overlap raises at the access, and the
                     recorded footprints are cross-checked against the
                     static verdicts of [Effects] after the run — a
                     static/dynamic contradiction fails the oracle
                     even when the output value is right;
    - ["tuned"]    — a tuned configuration is stored in the tuning
                     database for the program, resolved through
                     [Tune_db.install] / [Pipeline.tuned_config_for],
                     the plan compiled with [~tune:true] and the VM
                     run with the tuned [cfg_vm_chunk] (tuning
                     transparency);
    - ["cache-rt"] — the plan is compiled, round-tripped through the
                     [FT_PLAN_CACHE] disk cache (memory cleared, then
                     reloaded), the two plans compared structurally,
                     and the VM run as usual (cache transparency);
    - ["compiled"] / ["compiled2"] / ["compiled4"]
                   — the compiled executor ({!Executor} with the
                     default [Run_opts], arena on) at an explicit
                     1/2/4-domain pool: straight-line closures over
                     arena storage must be bitwise-identical to the
                     interpreting VM at every domain count.  Under
                     [FT_SHADOW=1] the run is also recorded and
                     cross-checked against the static analysis;
    - ["compiled-noarena"]
                   — the compiled executor with [arena = false]
                     (dedicated per-cell tensors): storage layout must
                     not change a single bit;
    - ["fused"]    — the compiled executor with fusion on (the
                     default) under a deliberately hostile pack
                     blocking (tiny, mutually-indivisible mc/kc/nc):
                     partial panels and odd k-remainders in the packed
                     micro-kernel must still be bitwise-identical;
    - ["compiled-nofuse"]
                   — the compiled executor with [fuse = false]: every
                     op runs as its own kernel through its own scratch
                     slot, no epilogues, no packing — fusion must not
                     change a single bit;
    - ["sharded2"] / ["sharded4"]
                   — the distributed executor ([lib/dist]) over 2 / 4
                     simulated devices: auto-partitioned shards on real
                     OCaml domains, per-device stores, pull-based
                     transfers — the whole halo-exchange machinery must
                     not change a single bit.

    VM-family oracles return the {e raw} VM output, which materialises
    fold/reduce accumulator history; {!project} maps it down to the
    interpreter's view.  The driver compares VM oracles raw against
    ["vm-seq"] (invariance) and projected ["vm-seq"] against
    ["interp"] (compiler correctness). *)

type outcome =
  | Value of Fractal.t  (** raw output of this back end *)
  | Unsupported of string
      (** the program is outside the compiled fragment
          ([Build.Unsupported]) — fine for interpreter-only programs,
          a regression otherwise *)
  | Failed of string  (** any other exception, or a transparency
                          violation (plan mismatch after a cache round
                          trip, tuned config not resolved) *)

type run = { r_oracle : string; r_outcome : outcome; r_wall_ms : float }

val all_oracles : string list
(** In registry order; ["interp"] first. *)

val stress_pack : Tensor.pack_blocking
(** The hostile GEMM pack blocking used by the ["fused"] oracle:
    tiny, mutually-indivisible mc/kc/nc that force partial panels and
    odd k-remainders through the packed micro-kernel. *)

type ctx
(** Shared oracle state: lazily created domain pools and private
    temporary directories installed as [FT_PLAN_CACHE] / [FT_TUNE_DB]
    for the lifetime of the context (previous values restored on
    {!close}), so a conformance run never touches — and is never
    contaminated by — the user's caches. *)

val create : ?oracles:string list -> unit -> ctx
(** [oracles] restricts the registry (unknown names raise
    [Invalid_argument]); default {!all_oracles}. *)

val selected : ctx -> string list

val close : ctx -> unit
(** Shut pools down, remove the temporary directories, restore the
    environment.  Idempotent. *)

val run_all : ctx -> Expr.program -> (string * Fractal.t) list -> run list
(** Execute the program through every selected oracle.  Never raises:
    per-oracle exceptions become {!Failed} outcomes. *)

val project : Expr.program -> Fractal.t -> Fractal.t
(** Map a raw VM output down to the interpreter's view of the same
    program: along the program's SOAC spine, a [foldl]/[reduce] level
    keeps only its last accumulator state, a [foldr] level its first
    (storage index 0), and [map]/[scanl]/[scanr] levels recurse. *)
