type trial = { t_law : string; t_ok : bool; t_detail : string }

(* ---------------------------------------------------------------- *)
(* Program scaffolding                                               *)
(* ---------------------------------------------------------------- *)

(* Every law runs over the conform input family:
   xss : [batch][seq]f32[1,width], with the law's expression applied
   per batch row. *)

let token width = Shape.of_array [| 1; width |]

let scaffold ~batch ~seq ~width inner =
  let open Expr in
  {
    name = "law";
    inputs =
      [ ("xss", List_ty (batch, List_ty (seq, Tensor_ty (token width)))) ];
    body = map_e ~params:[ "xs" ] ~body:inner (Var "xss");
  }

let rev e = Expr.Access (Expr.Linear { shift = 0; reverse = true }, e)
let chain ops e = List.fold_left (fun e a -> Expr.Access (a, e)) e ops

(* A common consumer so access-law results flow through an aggregate
   (the paper's access operators always feed a compute operator). *)
let sum_scan width e =
  let open Expr in
  Soac
    {
      kind = Scanl;
      fn = { params = [ "s"; "x" ]; body = Add @@@ [ Var "s"; Var "x" ] };
      init = Some (Lit (Tensor.zeros (token width)));
      xs = e;
    }

let agg kind width e =
  let open Expr in
  Soac
    {
      kind;
      fn = { params = [ "s"; "x" ]; body = Add @@@ [ Var "s"; Var "x" ] };
      init = Some (Lit (Tensor.zeros (token width)));
      xs = e;
    }

let map_tanh e = Expr.(map_e ~params:[ "x" ] ~body:(Tanh @@@ [ Var "x" ]) e)

let gen_inputs rng ~batch ~seq ~width =
  let tok = token width in
  [ ("xss",
     Fractal.tabulate batch (fun _ ->
         Fractal.tabulate seq (fun _ ->
             Fractal.Leaf (Tensor.scale 0.5 (Tensor.rand rng tok))))) ]

let extents rng =
  (1 + Rng.int rng 2, 3 + Rng.int rng 6, 1 + Rng.int rng 3)

(* ---------------------------------------------------------------- *)
(* The laws                                                          *)
(* ---------------------------------------------------------------- *)

(* Each law returns (lhs inner, rhs inner, instance description); the
   inner expressions consume the lambda variable "xs". *)
let draw_law rng name =
  let xs = Expr.Var "xs" in
  let b, n, w = extents rng in
  let lhs, rhs, detail =
    match name with
    | "slice_slice" ->
        let a = Rng.int rng (n - 1) in
        let b' = a + 2 + Rng.int rng (n - a - 1) in
        (* inner slice of [a, b') — length b'-a >= 2 *)
        let c = Rng.int rng (b' - a - 1) in
        let d = c + 1 + Rng.int rng (b' - a - c - 1) in
        ( sum_scan w (chain [ Expr.Slice { lo = a; hi = b' };
                              Expr.Slice { lo = c; hi = d } ] xs),
          sum_scan w (chain [ Expr.Slice { lo = a + c; hi = a + d } ] xs),
          Printf.sprintf "slice(%d,%d).slice(%d,%d)" a b' c d )
    | "stride_stride" ->
        let s1 = Rng.int rng (n - 1) in
        let k1 = 1 + Rng.int rng 2 in
        let n1 = 1 + ((n - 1 - s1) / k1) in
        let s2 = Rng.int rng n1 in
        let k2 = 1 + Rng.int rng 2 in
        ( sum_scan w (chain [ Expr.Strided { start = s1; step = k1 };
                              Expr.Strided { start = s2; step = k2 } ] xs),
          sum_scan w
            (chain [ Expr.Strided { start = s1 + (s2 * k1); step = k1 * k2 } ]
               xs),
          Printf.sprintf "stride(%d,%d).stride(%d,%d)" s1 k1 s2 k2 )
    | "shift_is_slice" ->
        let k = Rng.int rng n in
        ( sum_scan w (chain [ Expr.Linear { shift = k; reverse = false } ] xs),
          sum_scan w (chain [ Expr.Slice { lo = k; hi = n } ] xs),
          Printf.sprintf "linear(%d) over [%d]" k n )
    | "reverse_involution" ->
        ( sum_scan w (rev (rev xs)),
          sum_scan w xs,
          Printf.sprintf "reverse.reverse over [%d]" n )
    | "reverse_foldl_foldr" ->
        ( agg Expr.Foldl w (rev xs),
          agg Expr.Foldr w xs,
          Printf.sprintf "foldl(rev) vs foldr over [%d]" n )
    | "reverse_scanl_scanr" ->
        ( agg Expr.Scanl w (rev xs),
          rev (agg Expr.Scanr w xs),
          Printf.sprintf "scanl(rev) vs rev(scanr) over [%d]" n )
    | "map_reverse_commute" ->
        (map_tanh (rev xs), rev (map_tanh xs), Printf.sprintf "map(tanh) over [%d]" n)
    | "gather_gather" ->
        let m1 = 1 + Rng.int rng n in
        let i1 = Array.init m1 (fun _ -> Rng.int rng n) in
        let m2 = 1 + Rng.int rng (min m1 4) in
        let i2 = Array.init m2 (fun _ -> Rng.int rng m1) in
        let composed = Array.map (fun j -> i1.(j)) i2 in
        ( sum_scan w (chain [ Expr.Indirect i1; Expr.Indirect i2 ] xs),
          sum_scan w (chain [ Expr.Indirect composed ] xs),
          Printf.sprintf "gather[%d].gather[%d]" m1 m2 )
    | "gather_reverse" ->
        let idx = Array.init n (fun i -> n - 1 - i) in
        ( sum_scan w (rev xs),
          sum_scan w (chain [ Expr.Indirect idx ] xs),
          Printf.sprintf "reverse vs gather over [%d]" n )
    | other -> invalid_arg (Printf.sprintf "Metamorphic: unknown law %S" other)
  in
  (scaffold ~batch:b ~seq:n ~width:w lhs,
   scaffold ~batch:b ~seq:n ~width:w rhs,
   (b, n, w), detail)

let access_law_names =
  [ "slice_slice"; "stride_stride"; "shift_is_slice"; "reverse_involution";
    "reverse_foldl_foldr"; "reverse_scanl_scanr"; "map_reverse_commute";
    "gather_gather"; "gather_reverse" ]

let law_names = access_law_names @ [ "fused_nofuse" ]

(* Fusion transparency as a law: one program, two engine
   configurations.  The subject program is drawn from the access-law
   pool (its LHS), so the compiled executor sees folds, scans,
   reverses and gathers; the left side runs with fusion on under the
   hostile {!Oracles.stress_pack} blocking, the right side with fusion
   off (every op its own kernel, no epilogues, no packing).  Exact
   equality is the bar: fusion only reassociates scratch storage and
   loop structure, never the per-element float operation order. *)
let run_fused_nofuse rng =
  let subject =
    List.nth access_law_names (Rng.int rng (List.length access_law_names))
  in
  let p, _, (b, n, w), instance = draw_law rng subject in
  let detail = Printf.sprintf "fuse on/off over %s %s" subject instance in
  match
    let inputs = gen_inputs rng ~batch:b ~seq:n ~width:w in
    Typecheck.check_program p |> ignore;
    let g = Build.build p in
    let run fuse pack =
      let opts = { Run_opts.default with Run_opts.fuse; pack } in
      Vm.output (Executor.run ~opts g inputs) p.Expr.name
    in
    Fractal.equal_exact
      (run true (Some Oracles.stress_pack))
      (run false None)
  with
  | true -> { t_law = "fused_nofuse"; t_ok = true; t_detail = detail }
  | false ->
      { t_law = "fused_nofuse"; t_ok = false;
        t_detail =
          Printf.sprintf "%s: engines disagree (batch=%d seq=%d width=%d)"
            detail b n w }
  | exception Build.Unsupported msg ->
      (* outside the compiled fragment: nothing to compare, not a bug *)
      { t_law = "fused_nofuse"; t_ok = true;
        t_detail = Printf.sprintf "%s: unsupported (%s), skipped" detail msg }
  | exception e ->
      { t_law = "fused_nofuse"; t_ok = false;
        t_detail =
          Printf.sprintf "%s: raised %s" detail (Printexc.to_string e) }

let run_law rng name =
  if name = "fused_nofuse" then run_fused_nofuse rng
  else
    let lhs, rhs, (b, n, w), detail = draw_law rng name in
    match
      let inputs = gen_inputs rng ~batch:b ~seq:n ~width:w in
      Typecheck.check_program lhs |> ignore;
      Typecheck.check_program rhs |> ignore;
      let vl = Interp.run_program lhs inputs in
      let vr = Interp.run_program rhs inputs in
      Fractal.equal_exact vl vr
    with
    | true -> { t_law = name; t_ok = true; t_detail = detail }
    | false ->
        { t_law = name; t_ok = false;
          t_detail =
            Printf.sprintf "%s: sides disagree (batch=%d seq=%d width=%d)"
              detail b n w }
    | exception e ->
        { t_law = name; t_ok = false;
          t_detail = Printf.sprintf "%s: raised %s" detail (Printexc.to_string e) }

let run_all rng ~iters =
  List.concat_map
    (fun name -> List.init iters (fun _ -> run_law rng name))
    law_names
