type outcome =
  | Value of Fractal.t
  | Unsupported of string
  | Failed of string

type run = { r_oracle : string; r_outcome : outcome; r_wall_ms : float }

let all_oracles =
  [ "interp"; "vm-seq"; "vm-wave1"; "vm-wave2"; "vm-wave4"; "shadow";
    "tuned"; "cache-rt"; "compiled"; "compiled2"; "compiled4";
    "compiled-noarena"; "fused"; "compiled-nofuse"; "sharded2"; "sharded4" ]

(* ---------------------------------------------------------------- *)
(* Context: pools + private cache/tune directories                   *)
(* ---------------------------------------------------------------- *)

type ctx = {
  cx_oracles : string list;
  mutable cx_pools : (int * Domain_pool.t) list;
  cx_cache_dir : string;
  cx_tune_dir : string;
  cx_prev_cache : string option;
  cx_prev_tune : string option;
  mutable cx_closed : bool;
}

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftconform-%d-%d-%s" (Unix.getpid ()) !dir_counter tag)
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let remove_dir d =
  if Sys.file_exists d && Sys.is_directory d then (
    Array.iter (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
      (Sys.readdir d);
    try Unix.rmdir d with _ -> ())

let create ?(oracles = all_oracles) () =
  List.iter
    (fun o ->
      if not (List.mem o all_oracles) then
        invalid_arg (Printf.sprintf "Oracles.create: unknown oracle %S" o))
    oracles;
  let prev_cache = Sys.getenv_opt "FT_PLAN_CACHE" in
  let prev_tune = Sys.getenv_opt Tune_db.env_var in
  let cache_dir = fresh_dir "cache" in
  let tune_dir = fresh_dir "tune" in
  Unix.putenv "FT_PLAN_CACHE" cache_dir;
  Unix.putenv Tune_db.env_var tune_dir;
  (* a fresh context must not inherit plans or tunings from earlier
     runs in the same process *)
  Pipeline.Cache.clear ();
  Tune_db.clear_memory ();
  {
    cx_oracles = oracles;
    cx_pools = [];
    cx_cache_dir = cache_dir;
    cx_tune_dir = tune_dir;
    cx_prev_cache = prev_cache;
    cx_prev_tune = prev_tune;
    cx_closed = false;
  }

let selected ctx = ctx.cx_oracles

let pool ctx n =
  match List.assoc_opt n ctx.cx_pools with
  | Some p -> p
  | None ->
      let p = Domain_pool.create ~domains:n in
      ctx.cx_pools <- (n, p) :: ctx.cx_pools;
      p

let close ctx =
  if not ctx.cx_closed then (
    ctx.cx_closed <- true;
    List.iter (fun (_, p) -> Domain_pool.shutdown p) ctx.cx_pools;
    ctx.cx_pools <- [];
    remove_dir ctx.cx_cache_dir;
    remove_dir ctx.cx_tune_dir;
    Unix.putenv "FT_PLAN_CACHE" (Option.value ctx.cx_prev_cache ~default:"");
    Unix.putenv Tune_db.env_var (Option.value ctx.cx_prev_tune ~default:"");
    Pipeline.Cache.clear ();
    Tune_db.clear_memory ())

(* ---------------------------------------------------------------- *)
(* Projection: raw VM output -> interpreter view                     *)
(* ---------------------------------------------------------------- *)

let rec project_expr (e : Expr.t) (v : Fractal.t) =
  match e with
  | Expr.Let (_, _, e2) -> project_expr e2 v
  | Expr.Soac { kind; fn; _ } -> (
      match kind with
      | Expr.Foldl | Expr.Reduce ->
          project_expr fn.Expr.body (Fractal.get v (Fractal.length v - 1))
      | Expr.Foldr ->
          (* a right fold finishes at storage index 0 *)
          project_expr fn.Expr.body (Fractal.get v 0)
      | Expr.Map | Expr.Scanl | Expr.Scanr -> (
          match v with
          | Fractal.Leaf _ -> v
          | Fractal.Node _ ->
              Fractal.tabulate (Fractal.length v) (fun i ->
                  project_expr fn.Expr.body (Fractal.get v i))))
  | _ -> v

let project (p : Expr.program) v = project_expr p.Expr.body v

(* ---------------------------------------------------------------- *)
(* The oracles                                                       *)
(* ---------------------------------------------------------------- *)

let vm_value g ?order ?pool ?chunk (p : Expr.program) inputs =
  let outs = Vm.run ?order ?pool ?chunk g inputs in
  Value (Vm.output outs p.Expr.name)

let tuned_oracle ctx (p : Expr.program) g inputs =
  (* Store a deliberately non-default configuration, resolve it back
     through the installed database, and demand that compiling and
     running under it changes nothing. *)
  Tune_db.install ();
  let key = Pipeline.program_key p in
  let device = Tune_db.device_digest Device.a100 in
  Tune_db.store
    {
      Tune_db.tr_key = key;
      tr_device = device;
      tr_tile = { Tile.default_config with Tile.cfg_vm_chunk = 1 };
      tr_collapse = true;
      tr_cost = 0.0;
      tr_oracle = "conform";
      tr_strategy = "pinned";
      tr_budget = 0;
      tr_seed = 0;
    };
  match Pipeline.tuned_config_for key with
  | None -> Failed "stored tuned config did not resolve through Tune_db"
  | Some tile ->
      ignore (Pipeline.plan_cached ~tune:true p);
      vm_value g ~order:Vm.Wavefront ~pool:(pool ctx 2)
        ~chunk:tile.Tile.cfg_vm_chunk p inputs

(* Wavefront execution under the shadow recorder: every cell access is
   logged with its anti-chain, same-front overlaps raise immediately,
   and the recorded footprints/liveness must agree with the static
   verdicts of Effects — a contradiction fails the oracle even when
   the output value is right. *)
let shadow_oracle ctx (p : Expr.program) g inputs =
  let sh = Shadow.create g in
  let outs =
    Vm.run ~order:Vm.Wavefront ~pool:(pool ctx 2) ~shadow:sh g inputs
  in
  let summary = Shadow.finish sh in
  match Shadow.cross_check g summary sh with
  | [] -> Value (Vm.output outs p.Expr.name)
  | issues ->
      Failed
        ("shadow memory contradicts the static analysis: "
        ^ String.concat "; " issues)

(* The compiled executor through the unified front door.  Run_opts
   defaults keep [Shadow_env], so corpus replay under FT_SHADOW=1 also
   cross-checks the recorded accesses against the static analysis.  A
   graph outside the compiled fragment falls back to the interpreting
   VM inside Executor — still a legitimate differential point: the
   front door must be value-transparent either way. *)
let compiled_oracle ?(domains = 1) ?(arena = true) ?(fuse = true) ?pack
    (p : Expr.program) g inputs =
  let opts =
    { Run_opts.default with Run_opts.domains = Some domains; arena; fuse; pack }
  in
  let outs = Executor.run ~opts g inputs in
  Value (Vm.output outs p.Expr.name)

(* Hostile pack blocking: tiny, mutually-indivisible mc/kc/nc force
   every edge case in the packed micro-kernel (partial panels, odd
   k-remainders for the unroll-by-4 path).  Bitwise equality with the
   interpreter under this blocking is the strongest cheap evidence
   that packing is value-transparent for ANY blocking. *)
let stress_pack = { Tensor.mc = 3; kc = 48; nc = 40 }

(* Distributed execution over N simulated devices: auto-partitioned
   shards on real domains, pull-based transfers between per-device
   stores.  Raw VM-shaped outputs, so Conform's bitwise comparison
   against vm-seq covers the whole transfer machinery. *)
let sharded_oracle ctx ~devices (p : Expr.program) g inputs =
  let outs = Dist.sharded_outputs ~pool:(pool ctx devices) ~devices g inputs in
  Value (Vm.output outs p.Expr.name)

let cache_rt_oracle (p : Expr.program) g inputs =
  let key = Pipeline.program_key p in
  let plan1 = Pipeline.plan_cached p in
  Pipeline.Cache.clear ();
  if not (Pipeline.Cache.on_disk key) then
    Failed "plan was not persisted to FT_PLAN_CACHE"
  else
    let plan2 = Pipeline.plan_cached p in
    if plan1 <> plan2 then
      Failed "plan changed across a disk-cache round trip"
    else vm_value g ~order:Vm.Sequential p inputs

let run_one ctx (p : Expr.program) inputs graph name =
  match name with
  | "interp" -> (
      try Value (Interp.run_program p inputs)
      with e -> Failed (Printexc.to_string e))
  | _ -> (
      match graph with
      | `Unsupported msg -> Unsupported msg
      | `Invalid msg -> Failed msg
      | `Ok g -> (
          try
            match name with
            | "vm-seq" -> vm_value g ~order:Vm.Sequential p inputs
            | "vm-wave1" ->
                vm_value g ~order:Vm.Wavefront ~pool:(pool ctx 1) p inputs
            | "vm-wave2" ->
                vm_value g ~order:Vm.Wavefront ~pool:(pool ctx 2) p inputs
            | "vm-wave4" ->
                vm_value g ~order:Vm.Wavefront ~pool:(pool ctx 4) p inputs
            | "shadow" -> shadow_oracle ctx p g inputs
            | "tuned" -> tuned_oracle ctx p g inputs
            | "cache-rt" -> cache_rt_oracle p g inputs
            | "compiled" -> compiled_oracle p g inputs
            | "compiled2" -> compiled_oracle ~domains:2 p g inputs
            | "compiled4" -> compiled_oracle ~domains:4 p g inputs
            | "compiled-noarena" -> compiled_oracle ~arena:false p g inputs
            | "fused" ->
                compiled_oracle ~pack:stress_pack p g inputs
            | "compiled-nofuse" -> compiled_oracle ~fuse:false p g inputs
            | "sharded2" -> sharded_oracle ctx ~devices:2 p g inputs
            | "sharded4" -> sharded_oracle ctx ~devices:4 p g inputs
            | other -> Failed (Printf.sprintf "unknown oracle %S" other)
          with e -> Failed (Printexc.to_string e)))

let run_all ctx (p : Expr.program) inputs =
  let graph =
    match Build.build p with
    | exception Build.Unsupported msg -> `Unsupported msg
    | g -> (
        match Ir.validate g with
        | Ok () -> `Ok g
        | Error es -> `Invalid ("invalid graph: " ^ String.concat "; " es))
  in
  List.map
    (fun name ->
      let t0 = Unix.gettimeofday () in
      let outcome = run_one ctx p inputs graph name in
      let t1 = Unix.gettimeofday () in
      { r_oracle = name; r_outcome = outcome; r_wall_ms = (t1 -. t0) *. 1e3 })
    ctx.cx_oracles
