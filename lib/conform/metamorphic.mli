(** Metamorphic laws: pairs of syntactically different programs that
    must compute bitwise-identical values.

    Differential oracles (one program, many back ends) cannot see a
    bug shared by every back end — e.g. an access operator whose
    semantics are consistently wrong.  These laws cross-check the
    semantics against themselves: each trial draws random extents and
    inputs, builds two programs related by an algebraic identity of
    the access operators (the composition rules behind paper Table 3)
    or of the aggregate direction, and demands
    [Fractal.equal_exact (interp lhs) (interp rhs)].  Every law picks
    identities whose two sides apply the same floating-point
    operations in the same order, so exact equality is sound.

    Laws:
    - [slice_slice]     — [xs.slice(a,b).slice(c,d) = xs.slice(a+c, a+d)]
    - [stride_stride]   — [xs.stride(s1,k1).stride(s2,k2)
                           = xs.stride(s1 + s2*k1, k1*k2)]
    - [shift_is_slice]  — [xs.linear(k) = xs.slice(k, n)]
    - [reverse_involution] — [xs.reverse().reverse() = xs]
    - [reverse_foldl_foldr] — [xs.reverse().foldl(z){f} = xs.foldr(z){f}]
    - [reverse_scanl_scanr] — [xs.reverse().scanl(z){f}
                               = xs.scanr(z){f}.reverse()]
    - [map_reverse_commute] — [xs.reverse().map{f} = xs.map{f}.reverse()]
    - [gather_gather]   — [xs.gather(I).gather(J) = xs.gather(I∘J)]
    - [gather_reverse]  — [xs.reverse() = xs.gather(n-1, …, 0)]
    - [fused_nofuse]    — one program drawn from the access-law pool,
                          run through the compiled executor with
                          fusion on (under the hostile
                          {!Oracles.stress_pack} GEMM blocking) and
                          with fusion off: kernel fusion, epilogues
                          and panel packing must be value-transparent
                          bit for bit. *)

type trial = {
  t_law : string;
  t_ok : bool;
  t_detail : string;  (** describes the drawn instance; failure detail *)
}

val law_names : string list

val run_law : Rng.t -> string -> trial
(** One random trial of a named law.
    @raise Invalid_argument on an unknown law name. *)

val run_all : Rng.t -> iters:int -> trial list
(** [iters] trials of every law, interleaved law-major; all draws come
    from the one [Rng.t] stream, so a whole metamorphic run is
    reproducible from its seed. *)
