type inner =
  | I_soac of { kind : Expr.soac_kind; udf : int }
  | I_zip of { kind : Expr.soac_kind; udf : int; rev : bool }
  | I_nest of { outer : Expr.access; kind : Expr.soac_kind; udf : int }

type spec = {
  sp_batch : int;
  sp_seq : int;
  sp_width : int;
  sp_chain : Expr.access list;
  sp_inner : inner;
  sp_input_seed : int;
}

(* ---------------------------------------------------------------- *)
(* Derived structure                                                 *)
(* ---------------------------------------------------------------- *)

let token sp = Shape.of_array [| 1; sp.sp_width |]

(* Sequence length after one access operator (operands are generated
   non-negative, so no index normalisation is needed here). *)
let after_access n (a : Expr.access) =
  match a with
  | Expr.Linear { shift; _ } -> n - shift
  | Expr.Strided { start; step } -> 1 + ((n - 1 - start) / step)
  | Expr.Slice { lo; hi } -> hi - lo
  | Expr.Indirect idx -> Array.length idx
  | Expr.Windowed { size; stride; dilation } ->
      ((n - (((size - 1) * dilation) + 1)) / stride) + 1
  | Expr.Shifted_slide _ -> n
  | Expr.Interleave { phases } -> phases

let chain_result_len sp = List.fold_left after_access sp.sp_seq sp.sp_chain

(* ---------------------------------------------------------------- *)
(* Program construction                                              *)
(* ---------------------------------------------------------------- *)

(* Elementwise UDF bodies over the leaf token shape; [s] is the carried
   state (a literal for maps). *)
let body1 sp udf s x =
  let open Expr in
  let tok = token sp in
  match udf with
  | 0 -> Add @@@ [ s; x ]
  | 1 -> Add @@@ [ Mul @@@ [ s; x ]; x ]
  | 2 -> Maximum @@@ [ s; Tanh @@@ [ x ] ]
  | 3 -> Add @@@ [ Scale 0.5 @@@ [ s ]; Sigmoid @@@ [ x ] ]
  | _ -> Sub @@@ [ Mul @@@ [ s; Lit (Tensor.full tok 0.9) ]; Neg @@@ [ x ] ]

let body2 sp udf s a b =
  let open Expr in
  let tok = token sp in
  match udf with
  | 0 -> Add @@@ [ Add @@@ [ s; a ]; b ]
  | 1 -> Add @@@ [ s; Mul @@@ [ a; b ] ]
  | 2 -> Maximum @@@ [ s; Mul @@@ [ Tanh @@@ [ a ]; Sigmoid @@@ [ b ] ] ]
  | 3 -> Sub @@@ [ Add @@@ [ Scale 0.5 @@@ [ s ]; a ]; b ]
  | _ ->
      Add @@@ [ Mul @@@ [ s; Lit (Tensor.full tok 0.9) ]; Maximum @@@ [ a; b ] ]

let soac1 sp kind udf xs =
  let open Expr in
  let tok = token sp in
  match kind with
  | Map -> map_e ~params:[ "x" ] ~body:(body1 sp udf (Lit (Tensor.ones tok)) (Var "x")) xs
  | kind ->
      Soac
        {
          kind;
          fn = { params = [ "s"; "x" ]; body = body1 sp udf (Var "s") (Var "x") };
          init = Some (Lit (Tensor.zeros tok));
          xs;
        }

let soac2 sp kind udf xs =
  let open Expr in
  let tok = token sp in
  match kind with
  | Map ->
      map_e ~params:[ "a"; "b" ]
        ~body:(body2 sp udf (Lit (Tensor.ones tok)) (Var "a") (Var "b"))
        xs
  | kind ->
      Soac
        {
          kind;
          fn =
            {
              params = [ "s"; "a"; "b" ];
              body = body2 sp udf (Var "s") (Var "a") (Var "b");
            };
          init = Some (Lit (Tensor.zeros tok));
          xs;
        }

let chained sp =
  List.fold_left (fun e a -> Expr.Access (a, e)) (Expr.Var "xs") sp.sp_chain

let inner_expr sp =
  let xs' = chained sp in
  match sp.sp_inner with
  | I_soac { kind; udf } -> soac1 sp kind udf xs'
  | I_zip { kind; udf; rev } ->
      let rhs =
        if rev then Expr.Access (Expr.Linear { shift = 0; reverse = true }, xs')
        else xs'
      in
      soac2 sp kind udf (Expr.Zip [ xs'; rhs ])
  | I_nest { outer; kind; udf } ->
      let windows = Expr.Access (outer, xs') in
      let windows =
        (* shifted_slide is clamped at the borders; only the interior
           is affine, so the generated program consumes the interior
           exactly as BigBird does (paper Listing 4). *)
        match outer with
        | Expr.Shifted_slide { window } ->
            let h = window / 2 in
            let n = chain_result_len sp in
            Expr.Access (Expr.Slice { lo = h; hi = n - h }, windows)
        | _ -> windows
      in
      Expr.map_e ~params:[ "w" ] ~body:(soac1 sp kind udf (Expr.Var "w")) windows

let program sp =
  let open Expr in
  {
    name = "conform";
    inputs =
      [ ("xss",
         List_ty (sp.sp_batch, List_ty (sp.sp_seq, Tensor_ty (token sp)))) ];
    body = map_e ~params:[ "xs" ] ~body:(inner_expr sp) (Var "xss");
  }

(* ---------------------------------------------------------------- *)
(* Inputs                                                            *)
(* ---------------------------------------------------------------- *)

let rec random_value ?(scale = 0.3) rng (ty : Expr.ty) : Fractal.t =
  match ty with
  | Expr.Tensor_ty s -> Fractal.Leaf (Tensor.scale scale (Tensor.rand rng s))
  | Expr.List_ty (n, inner) ->
      Fractal.tabulate n (fun _ -> random_value ~scale rng inner)
  | Expr.Tuple_ty ts ->
      Fractal.Node (Array.of_list (List.map (random_value ~scale rng) ts))

let inputs sp =
  let rng = Rng.create sp.sp_input_seed in
  let p = program sp in
  List.map (fun (x, ty) -> (x, random_value ~scale:0.5 rng ty)) p.Expr.inputs

(* ---------------------------------------------------------------- *)
(* Classification                                                    *)
(* ---------------------------------------------------------------- *)

let valid sp =
  (* every access stays in range *)
  let chain_ok =
    List.fold_left
      (fun n_opt a ->
        match n_opt with
        | None -> None
        | Some n -> (
            let ok =
              match a with
              | Expr.Linear { shift; _ } -> shift >= 0 && shift < n
              | Expr.Strided { start; step } ->
                  step >= 1 && start >= 0 && start < n
              | Expr.Slice { lo; hi } -> lo >= 0 && lo < hi && hi <= n
              | Expr.Indirect idx ->
                  Array.length idx > 0
                  && Array.for_all (fun i -> i >= 0 && i < n) idx
              | Expr.Windowed { size; stride; dilation } ->
                  size >= 1 && stride >= 1 && dilation >= 1
                  && ((size - 1) * dilation) + 1 <= n
              | Expr.Shifted_slide { window } ->
                  window >= 1 && n - (2 * (window / 2)) >= 1
              | Expr.Interleave { phases } ->
                  phases >= 1 && n mod phases = 0
            in
            if ok then Some (after_access n a) else None))
      (Some sp.sp_seq) sp.sp_chain
  in
  let nest_ok =
    match (chain_ok, sp.sp_inner) with
    | None, _ -> false
    | Some n, I_nest { outer; _ } -> (
        match outer with
        | Expr.Windowed { size; stride; dilation } ->
            size >= 1 && stride >= 1 && dilation >= 1
            && ((size - 1) * dilation) + 1 <= n
        | Expr.Interleave { phases } -> phases >= 1 && n mod phases = 0
        | Expr.Shifted_slide { window } ->
            window >= 1 && n - (2 * (window / 2)) >= 1
        | _ -> false)
    | Some _, _ -> true
  in
  sp.sp_batch >= 1 && sp.sp_seq >= 1 && sp.sp_width >= 1 && nest_ok
  && (match Typecheck.check_program (program sp) with
     | _ -> true
     | exception Typecheck.Type_error _ -> false)

let access_compiled (a : Expr.access) =
  match a with
  | Expr.Linear { reverse = true; _ } | Expr.Indirect _ -> false
  | _ -> true

let compiled_expected sp =
  List.for_all access_compiled sp.sp_chain
  && match sp.sp_inner with I_zip { rev = true; _ } -> false | _ -> true

(* ---------------------------------------------------------------- *)
(* Coverage tags                                                     *)
(* ---------------------------------------------------------------- *)

let access_tag (a : Expr.access) =
  match a with
  | Expr.Linear { reverse = true; _ } -> "access:linear_reverse"
  | Expr.Linear { shift; _ } ->
      if shift > 0 then "access:linear_shift" else "access:linear"
  | Expr.Strided { start; _ } ->
      if start > 0 then "access:strided_offset" else "access:strided"
  | Expr.Slice _ -> "access:slice"
  | Expr.Indirect _ -> "access:indirect"
  | Expr.Windowed _ -> "access:window"
  | Expr.Shifted_slide _ -> "access:shifted_slide"
  | Expr.Interleave _ -> "access:interleave"

let soac_tag (k : Expr.soac_kind) = "soac:" ^ Expr.soac_kind_name k

let tags sp =
  let chain = List.map access_tag sp.sp_chain in
  let inner =
    match sp.sp_inner with
    | I_soac { kind; _ } -> [ "form:flat"; soac_tag kind ]
    | I_zip { kind; rev; _ } ->
        [ "form:zip"; "access:zip"; soac_tag kind ]
        @ if rev then [ "access:linear_reverse" ] else []
    | I_nest { outer; kind; _ } ->
        [ "form:nest"; access_tag outer; soac_tag kind ]
  in
  let chain_n = Printf.sprintf "chain:%d" (List.length sp.sp_chain) in
  List.sort_uniq compare (chain @ inner @ [ chain_n ])

let all_tags =
  [
    "access:linear"; "access:linear_shift"; "access:linear_reverse";
    "access:strided"; "access:strided_offset"; "access:slice";
    "access:indirect"; "access:window"; "access:shifted_slide";
    "access:interleave"; "access:zip";
    "soac:map"; "soac:reduce"; "soac:foldl"; "soac:foldr"; "soac:scanl";
    "soac:scanr";
    "form:flat"; "form:zip"; "form:nest";
    "chain:0"; "chain:1"; "chain:2";
  ]

let access_str (a : Expr.access) =
  match a with
  | Expr.Linear { shift; reverse } ->
      if reverse then Printf.sprintf "linear(%d, 1)" shift
      else Printf.sprintf "linear(%d)" shift
  | Expr.Strided { start; step } -> Printf.sprintf "stride(%d, %d)" start step
  | Expr.Slice { lo; hi } -> Printf.sprintf "slice(%d, %d)" lo hi
  | Expr.Indirect idx ->
      Printf.sprintf "gather(%s)"
        (String.concat ","
           (Array.to_list (Array.map string_of_int idx)))
  | Expr.Windowed { size; stride; dilation } ->
      Printf.sprintf "window(%d, %d, %d)" size stride dilation
  | Expr.Shifted_slide { window } -> Printf.sprintf "shifted_slide(%d)" window
  | Expr.Interleave { phases } -> Printf.sprintf "interleave(%d)" phases

let describe sp =
  let chain =
    if sp.sp_chain = [] then "-"
    else String.concat "." (List.map access_str sp.sp_chain)
  in
  let inner =
    match sp.sp_inner with
    | I_soac { kind; udf } ->
        Printf.sprintf "%s/udf%d" (Expr.soac_kind_name kind) udf
    | I_zip { kind; udf; rev } ->
        Printf.sprintf "zip%s.%s/udf%d"
          (if rev then "(rev)" else "")
          (Expr.soac_kind_name kind) udf
    | I_nest { outer; kind; udf } ->
        Printf.sprintf "%s.map.%s/udf%d" (access_str outer)
          (Expr.soac_kind_name kind) udf
  in
  Printf.sprintf "batch=%d seq=%d width=%d chain=%s inner=%s seed=%d"
    sp.sp_batch sp.sp_seq sp.sp_width chain inner sp.sp_input_seed

(* ---------------------------------------------------------------- *)
(* Random generation                                                 *)
(* ---------------------------------------------------------------- *)

let gen_chain_op rng n =
  (* [n] is the current sequence length; every op keeps it >= 1 *)
  match Rng.int rng 5 with
  | 0 ->
      let shift = Rng.int rng (min n 4) in
      Expr.Linear { shift; reverse = false }
  | 1 ->
      let shift = Rng.int rng (min n 3) in
      Expr.Linear { shift; reverse = true }
  | 2 ->
      let start = Rng.int rng (min n 3) in
      let step = 1 + Rng.int rng 3 in
      Expr.Strided { start; step }
  | 3 ->
      let lo = Rng.int rng n in
      let hi = lo + 1 + Rng.int rng (n - lo) in
      Expr.Slice { lo; hi }
  | _ ->
      let m = 1 + Rng.int rng (min n 4) in
      Expr.Indirect (Array.init m (fun _ -> Rng.int rng n))

let gen_kind rng =
  match Rng.int rng 6 with
  | 0 -> Expr.Map
  | 1 -> Expr.Reduce
  | 2 -> Expr.Foldl
  | 3 -> Expr.Foldr
  | 4 -> Expr.Scanl
  | _ -> Expr.Scanr

let gen_nest_outer rng n =
  (* depth-increasing access over a length-[n] sequence, or None when
     [n] is too short to window *)
  if n < 2 then None
  else
    match Rng.int rng 3 with
    | 0 ->
        let size = 2 + Rng.int rng (min (n - 1) 2) in
        let max_dil = (n - 1) / (size - 1) in
        let dilation = 1 + Rng.int rng (min max_dil 2) in
        let stride = 1 + Rng.int rng 2 in
        Some (Expr.Windowed { size; stride; dilation })
    | 1 ->
        let divisors =
          List.filter (fun p -> n mod p = 0) (List.init n (fun i -> i + 1))
        in
        let phases = List.nth divisors (Rng.int rng (List.length divisors)) in
        Some (Expr.Interleave { phases })
    | _ -> if n >= 3 then Some (Expr.Shifted_slide { window = 3 }) else None

let gen_once rng =
  let batch = 1 + Rng.int rng 3 in
  let seq = 2 + Rng.int rng 7 in
  let width = 1 + Rng.int rng 4 in
  let chain_len =
    match Rng.int rng 10 with 0 | 1 | 2 -> 0 | 3 | 4 | 5 | 6 -> 1 | _ -> 2
  in
  let rec draw_chain n k acc =
    if k = 0 then List.rev acc
    else
      let op = gen_chain_op rng n in
      draw_chain (after_access n op) (k - 1) (op :: acc)
  in
  let chain = draw_chain seq chain_len [] in
  let n = List.fold_left after_access seq chain in
  let kind = gen_kind rng in
  let udf = Rng.int rng 5 in
  let inner =
    match Rng.int rng 10 with
    | 0 | 1 -> I_zip { kind; udf; rev = Rng.int rng 4 = 0 }
    | 2 | 3 | 4 -> (
        match gen_nest_outer rng n with
        | Some outer -> I_nest { outer; kind; udf }
        | None -> I_soac { kind; udf })
    | _ -> I_soac { kind; udf }
  in
  let input_seed = 1 + Rng.int rng 1_000_000 in
  {
    sp_batch = batch;
    sp_seq = seq;
    sp_width = width;
    sp_chain = chain;
    sp_inner = inner;
    sp_input_seed = input_seed;
  }

let generate rng =
  let rec go attempts =
    if attempts = 0 then
      failwith "Gen.generate: could not draw a valid spec (generator bug)"
    else
      let sp = gen_once rng in
      if valid sp then sp else go (attempts - 1)
  in
  go 100
