(** Structural shrinking of failing conformance specs.

    A random counterexample is rarely a good bug report: extents are
    larger than needed, the access chain longer, the inner form noisier.
    [minimize] greedily applies structure-removing moves — shrink an
    extent, drop a chain operator, strip a zip or nest down to a plain
    SOAC, simplify operator arguments, normalise the UDF and input
    seed — keeping a move only when the shrunk spec still {e fails}
    (and is still {!Gen.valid}), until no move applies.  The result is
    a local minimum: every single simplification of it passes.  The
    caller's [fails] predicate defines failure (typically: some oracle
    disagrees), so the same shrinker serves differential and
    metamorphic counterexamples. *)

val candidates : Gen.spec -> Gen.spec list
(** One-step simplifications, most aggressive first.  Candidates are
    not validity-filtered; {!minimize} checks {!Gen.valid}. *)

val minimize : ?max_steps:int -> fails:(Gen.spec -> bool) -> Gen.spec -> Gen.spec * int
(** Greedy fixpoint of [candidates] under [fails]; returns the
    minimized spec and the number of accepted shrink steps.
    [max_steps] (default 200) bounds the loop; the input spec is
    assumed failing and is returned unchanged when nothing smaller
    fails. *)
