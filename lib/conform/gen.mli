(** Seeded, size-bounded generator of well-typed [.ft] programs.

    Each draw produces a {!spec}: a structured description of one
    random program over a 2-deep input FractalTensor
    ([[batch][seq]f32[1,width]]), from which the generator derives

    - the {!program} itself (outer [map] over the batch, a random
      access-operator chain on the sequence — compositions from paper
      Table 3 — and a random inner form: plain SOAC, [zip], or a
      depth-increasing nest through [window] / [interleave] /
      [shifted_slide]),
    - deterministic random {!inputs},
    - coverage {!tags} (which access operators and SOAC kinds the
      program exercises), and
    - whether the program is {!compiled_expected}: inside the fragment
      {!Build.build} accepts.  Reversed and indirect accesses are
      interpreter-only today; a spec that is [compiled_expected] but
      fails to build is a fragment {e regression}, which the
      conformance driver reports as a failure.

    Everything is a pure function of the {!Rng.t} stream, so a
    conformance run is reproducible from its seed. *)

type inner =
  | I_soac of { kind : Expr.soac_kind; udf : int }
      (** [xs'.kind(seed) { |s, x| udf }] (or [map { |x| … }]) *)
  | I_zip of { kind : Expr.soac_kind; udf : int; rev : bool }
      (** [zip(xs', xs'[.reverse()]).kind(seed) { |s, a, b| udf }] *)
  | I_nest of { outer : Expr.access; kind : Expr.soac_kind; udf : int }
      (** depth-increasing access ([Windowed] / [Interleave] /
          [Shifted_slide]) then [map] over the new outer dimension with
          an aggregate over each window *)

type spec = {
  sp_batch : int;
  sp_seq : int;
  sp_width : int;  (** leaf shape is [[1, width]] *)
  sp_chain : Expr.access list;
      (** depth-preserving accesses applied to [xs], innermost first *)
  sp_inner : inner;
  sp_input_seed : int;
}

val generate : Rng.t -> spec
(** One well-formed draw.  Always yields a spec whose {!program}
    type-checks (validity is re-checked; an invalid draw is a
    generator bug and raises). *)

val program : spec -> Expr.program
(** The program a spec denotes (name ["conform"], single input
    ["xss"]). *)

val inputs : spec -> (string * Fractal.t) list
(** Deterministic random inputs for {!program}, derived from
    [sp_input_seed]. *)

val valid : spec -> bool
(** Does {!program} type-check (and every access stay in range)?  Used
    by the shrinker, whose candidate moves may produce invalid specs. *)

val compiled_expected : spec -> bool
(** True when every access used is inside the compiled fragment (no
    reversed access, no indirect access). *)

val tags : spec -> string list
(** Coverage tags, a subset of {!all_tags}. *)

val all_tags : string list
(** Every tag the generator can emit — the coverage report lists all
    of them so holes are visible, not silent. *)

val describe : spec -> string
(** One-line human description (extents + operator summary). *)

val random_value : ?scale:float -> Rng.t -> Expr.ty -> Fractal.t
(** Random value of a declared input type (shared with [ftc run] /
    corpus replay so replays are deterministic). *)
