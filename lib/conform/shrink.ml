open Gen

(* One-step simplifications of a single access operator. *)
let shrink_access (a : Expr.access) : Expr.access list =
  match a with
  | Expr.Linear { shift; reverse = true } ->
      [ Expr.Linear { shift; reverse = false };
        Expr.Linear { shift = 0; reverse = true } ]
  | Expr.Linear { shift; reverse = false } ->
      if shift > 0 then [ Expr.Linear { shift = 0; reverse = false } ] else []
  | Expr.Strided { start; step } ->
      (if start > 0 then [ Expr.Strided { start = 0; step } ] else [])
      @ if step > 1 then [ Expr.Strided { start; step = 1 } ] else []
  | Expr.Slice { lo; hi } ->
      if hi - lo > 1 then [ Expr.Slice { lo; hi = lo + 1 } ] else []
  | Expr.Indirect idx ->
      (if Array.length idx > 1 then
         [ Expr.Indirect (Array.sub idx 0 1) ]
       else [])
      @ if Array.exists (fun i -> i <> 0) idx then
          [ Expr.Indirect (Array.map (fun _ -> 0) idx) ]
        else []
  | Expr.Windowed { size; stride; dilation } ->
      (if dilation > 1 then [ Expr.Windowed { size; stride; dilation = 1 } ]
       else [])
      @ (if stride > 1 then [ Expr.Windowed { size; stride = 1; dilation } ]
         else [])
      @ if size > 2 then [ Expr.Windowed { size = 2; stride; dilation } ]
        else []
  | Expr.Shifted_slide _ -> []
  | Expr.Interleave { phases } ->
      if phases > 1 then [ Expr.Interleave { phases = 1 } ] else []

let replace_nth xs i x = List.mapi (fun j y -> if j = i then x else y) xs
let remove_nth xs i = List.filteri (fun j _ -> j <> i) xs

let shrink_inner (inner : inner) : inner list =
  match inner with
  | I_soac { kind; udf } ->
      (if kind <> Expr.Map then [ I_soac { kind = Expr.Map; udf } ] else [])
      @ if udf > 0 then [ I_soac { kind; udf = 0 } ] else []
  | I_zip { kind; udf; rev } ->
      [ I_soac { kind; udf } ]
      @ (if rev then [ I_zip { kind; udf; rev = false } ] else [])
      @ if udf > 0 then [ I_zip { kind; udf = 0; rev } ] else []
  | I_nest { outer; kind; udf } ->
      [ I_soac { kind; udf } ]
      @ List.map (fun o -> I_nest { outer = o; kind; udf }) (shrink_access outer)
      @ if udf > 0 then [ I_nest { outer; kind; udf = 0 } ] else []

let candidates (sp : spec) : spec list =
  let chain_drops =
    List.mapi (fun i _ -> { sp with sp_chain = remove_nth sp.sp_chain i })
      sp.sp_chain
  in
  let chain_simpl =
    List.concat
      (List.mapi
         (fun i a ->
           List.map
             (fun a' -> { sp with sp_chain = replace_nth sp.sp_chain i a' })
             (shrink_access a))
         sp.sp_chain)
  in
  let extents =
    (if sp.sp_batch > 1 then
       [ { sp with sp_batch = 1 }; { sp with sp_batch = sp.sp_batch - 1 } ]
     else [])
    @ (if sp.sp_seq > 2 then
         [ { sp with sp_seq = max 2 (sp.sp_seq / 2) };
           { sp with sp_seq = sp.sp_seq - 1 } ]
       else [])
    @ if sp.sp_width > 1 then
        [ { sp with sp_width = 1 }; { sp with sp_width = sp.sp_width - 1 } ]
      else []
  in
  let inners =
    List.map (fun i -> { sp with sp_inner = i }) (shrink_inner sp.sp_inner)
  in
  let seed = if sp.sp_input_seed <> 1 then [ { sp with sp_input_seed = 1 } ] else [] in
  chain_drops @ inners @ extents @ chain_simpl @ seed

let minimize ?(max_steps = 200) ~fails sp =
  let rec go sp steps =
    if steps >= max_steps then (sp, steps)
    else
      match
        List.find_opt (fun c -> Gen.valid c && fails c) (candidates sp)
      with
      | None -> (sp, steps)
      | Some c -> go c (steps + 1)
  in
  go sp 0
