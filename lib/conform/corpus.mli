(** The minimized-repro corpus: failing programs persisted as
    replayable [.ft] files.

    Every divergence the conformance driver finds is shrunk
    ({!Shrink}) and written here as plain concrete syntax
    ({!Unparse.program}) with a small comment header carrying the
    input seed and the failure reason, so a corpus file is completely
    self-contained: parsing it and re-deriving inputs from the
    recorded seed reproduces the original comparison exactly.  Checked
    into [test/corpus/], these files are the regression suite the
    fuzzer writes for itself — [test_conform_suite] replays them all
    on every test run. *)

val write : dir:string -> seed:int -> reason:string -> Expr.program -> string
(** Persist a program (with its input seed and a one-line reason) as
    [dir/conform-<digest>.ft]; the digest covers the program text and
    seed, so distinct repros never collide and re-writing the same
    repro is idempotent.  Creates [dir] if missing.  Returns the
    path. *)

val load : string -> Expr.program * int
(** Parse a corpus file and its recorded input seed (a [# seed: N]
    header line; defaults to 1 when absent, so hand-written corpus
    files need no header).
    @raise Parse.Syntax_error / [Sys_error] as {!Parse.program_file}. *)

val inputs_for : Expr.program -> int -> (string * Fractal.t) list
(** The deterministic inputs a seed denotes for a program's declared
    input types — the same derivation {!Gen.inputs} uses, so replays
    see the original values. *)

val files : string -> string list
(** The [.ft] files under a directory, sorted; [[]] when the directory
    does not exist. *)
