type verdict = V_pass | V_fail of string | V_unsupported

type oracle_stat = {
  os_oracle : string;
  os_pass : int;
  os_fail : int;
  os_unsupported : int;
}

type failure = {
  fl_program : string;
  fl_seed : int;
  fl_reason : string;
  fl_shrink_steps : int;
  fl_corpus_file : string option;
}

type report = {
  rp_seed : int;
  rp_budget : int;
  rp_programs : int;
  rp_compiled : int;
  rp_oracles : string list;
  rp_oracle_stats : oracle_stat list;
  rp_coverage : (string * int) list;
  rp_metamorphic : Metamorphic.trial list;
  rp_failures : failure list;
  rp_wall_ms : float;
}

(* ---------------------------------------------------------------- *)
(* Fragment membership without a spec                                *)
(* ---------------------------------------------------------------- *)

let rec expr_compiled (e : Expr.t) =
  match e with
  | Expr.Access (Expr.Linear { reverse = true; _ }, _)
  | Expr.Access (Expr.Indirect _, _) ->
      false
  | Expr.Access (_, e') -> expr_compiled e'
  | Expr.Var _ | Expr.Lit _ -> true
  | Expr.Let (_, e1, e2) -> expr_compiled e1 && expr_compiled e2
  | Expr.Prim (_, es) | Expr.Tuple es | Expr.Zip es ->
      List.for_all expr_compiled es
  | Expr.Proj (e', _) -> expr_compiled e'
  | Expr.Index (e', _) -> expr_compiled e'
  | Expr.Soac { fn; init; xs; _ } ->
      expr_compiled fn.Expr.body
      && (match init with None -> true | Some i -> expr_compiled i)
      && expr_compiled xs

let program_compiled_expected (p : Expr.program) = expr_compiled p.Expr.body

(* ---------------------------------------------------------------- *)
(* Checking one program                                              *)
(* ---------------------------------------------------------------- *)

let check ctx ~expect_compiled (p : Expr.program) inputs =
  let runs = Oracles.run_all ctx p inputs in
  let value name =
    List.find_map
      (fun r ->
        match r.Oracles.r_outcome with
        | Oracles.Value v when r.Oracles.r_oracle = name -> Some v
        | _ -> None)
      runs
  in
  let interp_v = value "interp" in
  let seq_raw = value "vm-seq" in
  List.map
    (fun r ->
      let name = r.Oracles.r_oracle in
      let verdict =
        match r.Oracles.r_outcome with
        | Oracles.Failed m -> V_fail m
        | Oracles.Unsupported m ->
            if expect_compiled then V_fail ("fragment regression: " ^ m)
            else V_unsupported
        | Oracles.Value v -> (
            if name = "interp" then V_pass
            else
              (* every VM-family oracle must match vm-seq bitwise;
                 vm-seq itself (and any oracle running without vm-seq)
                 must match the interpreter after projection *)
              match (seq_raw, interp_v) with
              | Some sv, _ when name <> "vm-seq" ->
                  if Fractal.equal_exact v sv then V_pass
                  else V_fail "diverges bitwise from vm-seq"
              | _, Some iv ->
                  if Fractal.equal_exact (Oracles.project p v) iv then V_pass
                  else V_fail "diverges bitwise from the interpreter"
              | _, None -> V_fail "no reference value (interpreter failed)")
      in
      (name, verdict))
    runs

let first_fail verdicts =
  List.find_map
    (function
      | name, V_fail m -> Some (Printf.sprintf "%s: %s" name m) | _ -> None)
    verdicts

(* ---------------------------------------------------------------- *)
(* The run driver                                                    *)
(* ---------------------------------------------------------------- *)

let with_interp oracles =
  if List.mem "interp" oracles then oracles else "interp" :: oracles

let run ?(oracles = Oracles.all_oracles) ?corpus_dir ?(meta_iters = 3) ~seed
    ~budget () =
  let t0 = Unix.gettimeofday () in
  let oracles = with_interp oracles in
  let ctx = Oracles.create ~oracles () in
  Fun.protect ~finally:(fun () -> Oracles.close ctx) @@ fun () ->
  let rng = Rng.create seed in
  let stats = Hashtbl.create 8 in
  List.iter (fun o -> Hashtbl.replace stats o (0, 0, 0)) oracles;
  let bump o f =
    let p, x, u = try Hashtbl.find stats o with Not_found -> (0, 0, 0) in
    Hashtbl.replace stats o (f (p, x, u))
  in
  let coverage = Hashtbl.create 32 in
  List.iter (fun t -> Hashtbl.replace coverage t 0) Gen.all_tags;
  let failures = ref [] in
  let compiled = ref 0 in
  let check_spec sp =
    check ctx ~expect_compiled:(Gen.compiled_expected sp) (Gen.program sp)
      (Gen.inputs sp)
  in
  for _ = 1 to budget do
    let sp = Gen.generate rng in
    if Gen.compiled_expected sp then incr compiled;
    List.iter
      (fun t ->
        Hashtbl.replace coverage t
          (1 + try Hashtbl.find coverage t with Not_found -> 0))
      (Gen.tags sp);
    let verdicts = check_spec sp in
    List.iter
      (fun (o, v) ->
        bump o (fun (p, x, u) ->
            match v with
            | V_pass -> (p + 1, x, u)
            | V_fail _ -> (p, x + 1, u)
            | V_unsupported -> (p, x, u + 1)))
      verdicts;
    match first_fail verdicts with
    | None -> ()
    | Some reason ->
        let fails sp' = first_fail (check_spec sp') <> None in
        let min_sp, steps = Shrink.minimize ~fails sp in
        let reason =
          Option.value (first_fail (check_spec min_sp)) ~default:reason
        in
        let min_p = Gen.program min_sp in
        let corpus_file =
          Option.map
            (fun dir ->
              Corpus.write ~dir ~seed:min_sp.Gen.sp_input_seed ~reason min_p)
            corpus_dir
        in
        failures :=
          {
            fl_program = Unparse.program min_p;
            fl_seed = min_sp.Gen.sp_input_seed;
            fl_reason = reason;
            fl_shrink_steps = steps;
            fl_corpus_file = corpus_file;
          }
          :: !failures
  done;
  let metamorphic = Metamorphic.run_all (Rng.create (seed + 1)) ~iters:meta_iters in
  let oracle_stats =
    List.map
      (fun o ->
        let p, x, u = try Hashtbl.find stats o with Not_found -> (0, 0, 0) in
        { os_oracle = o; os_pass = p; os_fail = x; os_unsupported = u })
      oracles
  in
  let coverage =
    List.map
      (fun t -> (t, try Hashtbl.find coverage t with Not_found -> 0))
      Gen.all_tags
  in
  {
    rp_seed = seed;
    rp_budget = budget;
    rp_programs = budget;
    rp_compiled = !compiled;
    rp_oracles = oracles;
    rp_oracle_stats = oracle_stats;
    rp_coverage = coverage;
    rp_metamorphic = metamorphic;
    rp_failures = List.rev !failures;
    rp_wall_ms = (Unix.gettimeofday () -. t0) *. 1e3;
  }

(* ---------------------------------------------------------------- *)
(* Corpus replay                                                     *)
(* ---------------------------------------------------------------- *)

let replay ?(oracles = Oracles.all_oracles) paths =
  let oracles = with_interp oracles in
  let ctx = Oracles.create ~oracles () in
  Fun.protect ~finally:(fun () -> Oracles.close ctx) @@ fun () ->
  List.map
    (fun path ->
      let outcome =
        match Corpus.load path with
        | exception e -> Some ("load: " ^ Printexc.to_string e)
        | p, seed ->
            let inputs = Corpus.inputs_for p seed in
            let expect_compiled = program_compiled_expected p in
            first_fail (check ctx ~expect_compiled p inputs)
      in
      (path, outcome))
    paths

let passed rp =
  rp.rp_failures = []
  && List.for_all (fun t -> t.Metamorphic.t_ok) rp.rp_metamorphic

(* ---------------------------------------------------------------- *)
(* Reports                                                           *)
(* ---------------------------------------------------------------- *)

let report_to_text rp =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "conformance: seed=%d budget=%d (%d compiled, %d interpreter-only)\n"
    rp.rp_seed rp.rp_budget rp.rp_compiled (rp.rp_programs - rp.rp_compiled);
  pf "oracles:\n";
  List.iter
    (fun s ->
      pf "  %-10s pass %-4d fail %-4d unsupported %d\n" s.os_oracle s.os_pass
        s.os_fail s.os_unsupported)
    rp.rp_oracle_stats;
  let meta_fail =
    List.length (List.filter (fun t -> not t.Metamorphic.t_ok) rp.rp_metamorphic)
  in
  pf "metamorphic: %d trials, %d failed\n"
    (List.length rp.rp_metamorphic)
    meta_fail;
  List.iter
    (fun t ->
      if not t.Metamorphic.t_ok then
        pf "  FAIL %s: %s\n" t.Metamorphic.t_law t.Metamorphic.t_detail)
    rp.rp_metamorphic;
  pf "coverage:\n";
  List.iter
    (fun (t, n) -> pf "  %-24s %d%s\n" t n (if n = 0 then "  <- hole" else ""))
    rp.rp_coverage;
  (match rp.rp_failures with
  | [] -> pf "result: PASS (%.0f ms)\n" rp.rp_wall_ms
  | fs ->
      pf "result: FAIL, %d divergence(s) (%.0f ms)\n" (List.length fs)
        rp.rp_wall_ms;
      List.iter
        (fun f ->
          pf "--- %s (seed %d, %d shrink steps%s)\n%s" f.fl_reason f.fl_seed
            f.fl_shrink_steps
            (match f.fl_corpus_file with
            | Some c -> ", corpus " ^ c
            | None -> "")
            f.fl_program)
        fs);
  Buffer.contents buf

let report_to_jsonv rp =
  Jsonw.Obj
    [
      ("seed", Jsonw.Int rp.rp_seed);
      ("budget", Jsonw.Int rp.rp_budget);
      ("programs", Jsonw.Int rp.rp_programs);
      ("compiled", Jsonw.Int rp.rp_compiled);
      ("passed", Jsonw.Bool (passed rp));
      ( "oracles",
        Jsonw.List
          (List.map
             (fun s ->
               Jsonw.Obj
                 [
                   ("oracle", Jsonw.String s.os_oracle);
                   ("pass", Jsonw.Int s.os_pass);
                   ("fail", Jsonw.Int s.os_fail);
                   ("unsupported", Jsonw.Int s.os_unsupported);
                 ])
             rp.rp_oracle_stats) );
      ( "coverage",
        Jsonw.Obj (List.map (fun (t, n) -> (t, Jsonw.Int n)) rp.rp_coverage) );
      ( "metamorphic",
        Jsonw.List
          (List.map
             (fun t ->
               Jsonw.Obj
                 [
                   ("law", Jsonw.String t.Metamorphic.t_law);
                   ("ok", Jsonw.Bool t.Metamorphic.t_ok);
                   ("detail", Jsonw.String t.Metamorphic.t_detail);
                 ])
             rp.rp_metamorphic) );
      ( "failures",
        Jsonw.List
          (List.map
             (fun f ->
               Jsonw.Obj
                 [
                   ("reason", Jsonw.String f.fl_reason);
                   ("seed", Jsonw.Int f.fl_seed);
                   ("shrink_steps", Jsonw.Int f.fl_shrink_steps);
                   ( "corpus_file",
                     match f.fl_corpus_file with
                     | Some c -> Jsonw.String c
                     | None -> Jsonw.Null );
                   ("program", Jsonw.String f.fl_program);
                 ])
             rp.rp_failures) );
      ("wall_ms", Jsonw.Float rp.rp_wall_ms);
    ]
