let inputs_for (p : Expr.program) seed =
  let rng = Rng.create seed in
  List.map
    (fun (x, ty) -> (x, Gen.random_value ~scale:0.5 rng ty))
    p.Expr.inputs

(* Reasons go into a comment; newlines would break out of it. *)
let one_line s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let write ~dir ~seed ~reason (p : Expr.program) =
  let text = Unparse.program p in
  let digest =
    String.sub (Digest.to_hex (Digest.string (text ^ string_of_int seed))) 0 10
  in
  let body =
    String.concat ""
      [
        "# conform corpus: minimized failing program (replayed by \
         test_conform_suite)\n";
        Printf.sprintf "# seed: %d\n" seed;
        Printf.sprintf "# reason: %s\n" (one_line reason);
        text;
      ]
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "conform-%s.ft" digest) in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  path

let seed_of_text text =
  let seed = ref 1 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match Scanf.sscanf_opt line " # seed: %d" (fun n -> n) with
         | Some n -> seed := n
         | None -> ());
  !seed

let load path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (Parse.program text, seed_of_text text)

let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ft")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  else []
