(** The conformance driver: seeded differential + metamorphic runs,
    shrinking, and corpus replay.

    One {!run} draws [budget] random programs ({!Gen}), executes each
    through every selected oracle ({!Oracles}), compares bitwise
    ({!Fractal.equal_exact}) — VM-family oracles raw against
    ["vm-seq"], projected ["vm-seq"] against ["interp"] — then runs
    the {!Metamorphic} laws.  Every differential counterexample is
    shrunk ({!Shrink}) and, when a corpus directory is given,
    persisted as a replayable [.ft] file ({!Corpus}).  Everything is
    deterministic in the seed. *)

type verdict = V_pass | V_fail of string | V_unsupported

type oracle_stat = {
  os_oracle : string;
  os_pass : int;
  os_fail : int;
  os_unsupported : int;
      (** programs outside the compiled fragment (interpreter-only) *)
}

type failure = {
  fl_program : string;  (** minimized program, concrete syntax *)
  fl_seed : int;  (** input seed of the minimized repro *)
  fl_reason : string;
  fl_shrink_steps : int;
  fl_corpus_file : string option;
}

type report = {
  rp_seed : int;
  rp_budget : int;
  rp_programs : int;  (** differential programs checked (= budget) *)
  rp_compiled : int;  (** of which inside the compiled fragment *)
  rp_oracles : string list;
  rp_oracle_stats : oracle_stat list;
  rp_coverage : (string * int) list;
      (** per-{!Gen.all_tags} hit counts — zero entries are holes *)
  rp_metamorphic : Metamorphic.trial list;
  rp_failures : failure list;
  rp_wall_ms : float;
}

val program_compiled_expected : Expr.program -> bool
(** Syntactic fragment membership for programs without a {!Gen.spec}
    (corpus replays): no reversed and no indirect access anywhere. *)

val check :
  Oracles.ctx ->
  expect_compiled:bool ->
  Expr.program ->
  (string * Fractal.t) list ->
  (string * verdict) list
(** One program through every oracle of the context, with verdicts.
    [Unsupported] counts as {!V_fail} (a fragment regression) when
    [expect_compiled]. *)

val first_fail : (string * verdict) list -> string option
(** The first failing oracle's reason, as ["oracle: reason"]. *)

val run :
  ?oracles:string list ->
  ?corpus_dir:string ->
  ?meta_iters:int ->
  seed:int ->
  budget:int ->
  unit ->
  report
(** A full conformance run.  ["interp"] is always included (it is the
    reference).  [meta_iters] (default 3) trials per metamorphic law.
    Never raises on divergence — failures land in the report;
    {!passed} decides the exit code. *)

val replay :
  ?oracles:string list -> string list -> (string * string option) list
(** Replay corpus files: each parsed, its inputs re-derived from the
    recorded seed, and checked like a generated program.  Returns
    [(path, failure)] per file ([None] = conforms). *)

val passed : report -> bool
(** No differential failures and every metamorphic trial ok. *)

val report_to_text : report -> string
val report_to_jsonv : report -> Jsonw.t
