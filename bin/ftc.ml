(* ftc — the FractalTensor compiler driver.

     ftc list                      available workloads
     ftc verify [WORKLOAD]         interpreter vs imperative reference
     ftc show WORKLOAD [--stage S] dump the ETDG after a pipeline stage
     ftc compile WORKLOAD          run the full pipeline, print the plan
     ftc simulate WORKLOAD         execute every system's plan on the
                                   simulated A100
     ftc run FILE.ft               parse, check, interpret, compile
     ftc profile FILE.ft           compile + simulate with tracing;
                                   text/json/chrome output              *)

type workload = {
  w_name : string;
  w_describe : string;
  w_program : unit -> Expr.program;
  w_verify : unit -> bool;
  w_suite : unit -> Plan.t list;
}

let rng () = Rng.create 2024

let workloads =
  [
    {
      w_name = "stacked_rnn";
      w_describe = "stacked vanilla RNN (paper Listing 1, Figs 1-6)";
      w_program = (fun () -> Stacked_rnn.program Stacked_rnn.default);
      w_verify =
        (fun () ->
          let cfg = Stacked_rnn.default in
          let inp = Stacked_rnn.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Stacked_rnn.program cfg)
              (Stacked_rnn.bindings inp)
          in
          Fractal.equal_approx out (Stacked_rnn.reference cfg inp)
          && Fractal.equal_approx
               (Stacked_rnn.wavefront cfg inp)
               (Stacked_rnn.reference cfg inp));
      w_suite = (fun () -> Suites.stacked_rnn Stacked_rnn.paper);
    };
    {
      w_name = "stacked_lstm";
      w_describe = "stacked LSTM (paper Listing 2, Table 6)";
      w_program = (fun () -> Stacked_lstm.program Stacked_lstm.default);
      w_verify =
        (fun () ->
          let cfg = Stacked_lstm.default in
          let inp = Stacked_lstm.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Stacked_lstm.program cfg)
              (Stacked_lstm.bindings inp)
          in
          let csss, hsss = Stacked_lstm.reference cfg inp in
          let proj i =
            Soac.map (fun pn -> Soac.map (fun pr -> Fractal.get pr i) pn) out
          in
          let last m =
            Soac.map (fun pn -> Fractal.get pn (cfg.depth - 1)) m
          in
          Fractal.equal_approx (proj 0) (last csss)
          && Fractal.equal_approx (proj 1) (last hsss));
      w_suite = (fun () -> Suites.stacked_lstm Stacked_lstm.paper);
    };
    {
      w_name = "dilated_rnn";
      w_describe = "stacked dilated RNN (dilations 1,2,4,...)";
      w_program = (fun () -> Dilated_rnn.program Dilated_rnn.default);
      w_verify =
        (fun () ->
          let cfg = Dilated_rnn.default in
          let inp = Dilated_rnn.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Dilated_rnn.program cfg)
              (Dilated_rnn.bindings inp)
          in
          Fractal.equal_approx
            (Dilated_rnn.flatten_output cfg out)
            (Dilated_rnn.reference cfg inp));
      w_suite = (fun () -> Suites.dilated_rnn Dilated_rnn.paper);
    };
    {
      w_name = "grid_rnn";
      w_describe = "stacked 2-D grid RNN (three nested recurrences)";
      w_program = (fun () -> Grid_rnn.program Grid_rnn.default);
      w_verify =
        (fun () ->
          let cfg = Grid_rnn.default in
          let inp = Grid_rnn.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Grid_rnn.program cfg) (Grid_rnn.bindings inp)
          in
          Fractal.equal_approx out (Grid_rnn.reference cfg inp)
          && Fractal.equal_approx
               (Grid_rnn.wavefront cfg inp)
               (Grid_rnn.reference cfg inp));
      w_suite = (fun () -> Suites.grid_rnn Grid_rnn.paper);
    };
    {
      w_name = "b2b_gemm";
      w_describe = "back-to-back GEMMs with a narrow intermediate";
      w_program = (fun () -> B2b_gemm.program B2b_gemm.default);
      w_verify =
        (fun () ->
          let cfg = B2b_gemm.default in
          let inp = B2b_gemm.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (B2b_gemm.program cfg) (B2b_gemm.bindings inp)
          in
          Fractal.equal_approx out (B2b_gemm.reference cfg inp));
      w_suite = (fun () -> Suites.b2b_gemm B2b_gemm.paper);
    };
    {
      w_name = "flash_attention";
      w_describe = "FlashAttention (paper Listing 3): online softmax reduce";
      w_program = (fun () -> Flash_attention.program Flash_attention.default);
      w_verify =
        (fun () ->
          let cfg = Flash_attention.default in
          let inp = Flash_attention.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program
              (Flash_attention.program cfg)
              (Flash_attention.bindings inp)
          in
          Fractal.equal_approx out (Flash_attention.reference cfg inp));
      w_suite = (fun () -> Suites.flash_attention Flash_attention.paper);
    };
    {
      w_name = "conv1d";
      w_describe = "temporal convolution via window access (§7 expressibility)";
      w_program = (fun () -> Conv1d.program Conv1d.default);
      w_verify =
        (fun () ->
          let cfg = Conv1d.default in
          let inp = Conv1d.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Conv1d.program cfg) (Conv1d.bindings inp)
          in
          Fractal.equal_approx out (Conv1d.reference cfg inp));
      w_suite = (fun () -> [ Pipeline.plan (Conv1d.program Conv1d.large) ]);
    };
    {
      w_name = "selective_scan";
      w_describe = "Mamba-style gated linear recurrence (§7 extension)";
      w_program = (fun () -> Selective_scan.program Selective_scan.default);
      w_verify =
        (fun () ->
          let cfg = Selective_scan.default in
          let inp = Selective_scan.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Selective_scan.program cfg)
              (Selective_scan.bindings inp)
          in
          let r = Selective_scan.reference cfg inp in
          Fractal.equal_approx out r
          && Fractal.equal_approx ~eps:1e-4
               (Selective_scan.parallel_form cfg inp)
               r);
      w_suite =
        (fun () -> [ Pipeline.plan (Selective_scan.program Selective_scan.large) ]);
    };
    {
      w_name = "retention";
      w_describe = "chunkwise retention / RetNet (the paper's §7 extension)";
      w_program = (fun () -> Retention.program Retention.default);
      w_verify =
        (fun () ->
          let cfg = Retention.default in
          let inp = Retention.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Retention.program cfg) (Retention.bindings inp)
          in
          Fractal.equal_approx
            (Retention.output_of_interp out)
            (Retention.reference cfg inp));
      w_suite = (fun () -> Suites.retention Retention.large);
    };
    {
      w_name = "bigbird";
      w_describe = "BigBird blocked sparse attention (paper Listing 4)";
      w_program = (fun () -> Bigbird.program Bigbird.default);
      w_verify =
        (fun () ->
          let cfg = Bigbird.default in
          let inp = Bigbird.gen_inputs (rng ()) cfg in
          let out =
            Interp.run_program (Bigbird.program cfg) (Bigbird.bindings inp)
          in
          Fractal.equal_approx out (Bigbird.reference cfg inp));
      w_suite = (fun () -> Suites.bigbird Bigbird.paper);
    };
  ]

let find_workload name =
  match List.find_opt (fun w -> w.w_name = name) workloads with
  | Some w -> w
  | None ->
      Format.eprintf "unknown workload %s; try `ftc list'@." name;
      exit 1

(* Random inputs for a parsed program, from its declared types — the
   conformance generator's derivation, so `ftc run` and corpus replay
   agree on what a seed means. *)
let random_value rng (ty : Expr.ty) : Fractal.t =
  Gen.random_value ~scale:0.3 rng ty

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Asking for more domains than the machine has cores buys contention,
   not parallelism — flag it once the pool size is settled. *)
let warn_if_oversubscribed () =
  let hw = Stdlib.Domain.recommended_domain_count () in
  let used = Domain_pool.num_domains () in
  if used > hw then
    Format.eprintf
      "warning: domain pool of %d exceeds the %d hardware core(s) detected \
       — wavefront timings will include scheduling contention@."
      used hw

(* ------------------------------- commands ------------------------- *)

open Cmdliner

let list_cmd =
  let run () =
    List.iter
      (fun w -> Format.printf "%-18s %s@." w.w_name w.w_describe)
      workloads
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads")
    Term.(const run $ const ())

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let verify_cmd =
  let run name =
    let targets =
      match name with
      | Some n -> [ find_workload n ]
      | None -> workloads
    in
    let ok = ref true in
    List.iter
      (fun w ->
        let pass = w.w_verify () in
        if not pass then ok := false;
        Format.printf "%-18s %s@." w.w_name (if pass then "ok" else "FAILED"))
      targets;
    if not !ok then exit 1
  in
  let arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check the interpreter against the imperative reference")
    Term.(const run $ arg)

(* The --stage vocabulary is Pipeline's: the same names label verifier
   hooks, trace spans and these flags. *)
let stage_arg =
  Arg.(
    value
    & opt
        (enum
           (List.map (fun s -> (Pipeline.stage_name s, s)) Pipeline.all_stages))
        Pipeline.Build
    & info [ "stage" ] ~docv:"STAGE"
        ~doc:
          "Pipeline stage to dump: build, coarsen.lower, coarsen.group, \
           coarsen.merge or reorder")

let show_cmd =
  let run name stage format =
    let w = find_workload name in
    let t =
      Pipeline.compile ~verify:false
        ~stages:(Pipeline.stages_until stage)
        (w.w_program ())
    in
    let g =
      match Pipeline.stage_graph t stage with
      | Some g -> g
      | None -> t.Pipeline.p_emit_graph
    in
    match format with
    | `Text -> Format.printf "%a@." Ir.pp g
    | `Dot -> print_string (Dot.graph g)
  in
  Cmd.v (Cmd.info "show" ~doc:"Dump the ETDG after a pipeline stage")
    Term.(const run $ workload_arg $ stage_arg $ Cli_args.show_format_arg)

let verify_flag =
  Arg.(
    value
    & opt ~vopt:true bool true
    & info [ "verify" ] ~docv:"BOOL"
        ~doc:
          "Run the static verifier on every intermediate ETDG (after \
           build, coarsening and reordering).  On by default; \
           --verify=false disables it.")

let compile_one verify failed w =
  let t = Pipeline.compile ~verify ~fatal:false (w.w_program ()) in
  let built =
    match Pipeline.stage_graph t Pipeline.Build with
    | Some g -> g
    | None -> t.Pipeline.p_emit_graph
  in
  Format.printf "parsed: %d blocks, depth %d, dimension %d@."
    (List.length built.Ir.g_blocks) (Ir.depth built) (Ir.dimension built);
  (match Ir.validate built with
  | Ok () -> Format.printf "invariants: ok@."
  | Error es -> List.iter (Format.printf "invariant violated: %s@.") es);
  let merged = t.Pipeline.p_emit_graph in
  Format.printf "after grouping and width-wise merging: %d blocks@."
    (List.length merged.Ir.g_blocks);
  List.iter
    (fun b ->
      match List.assoc_opt b.Ir.blk_name t.Pipeline.p_reorder with
      | None -> ()
      | Some (r : Reorder.result) ->
          Format.printf "  %-40s p=[%s]%s@." b.Ir.blk_name
            (String.concat ","
               (Array.to_list (Array.map Expr.soac_kind_name b.Ir.blk_ops)))
            (if r.Reorder.wavefront then
               Printf.sprintf " wavefront, %d steps"
                 (Reorder.sequential_steps r)
             else " fully parallel"))
    merged.Ir.g_blocks;
  if verify then
    List.iter
      (fun (stage, ds) ->
        if ds = [] then Format.printf "verify[%s]: ok@." stage
        else begin
          Format.printf "verify[%s]: %d findings@." stage (List.length ds);
          List.iter
            (fun d -> Format.printf "  %a@." (Diagnostic.pp ?path:None) d)
            ds;
          if List.exists Diagnostic.is_error ds then failed := true
        end)
      (Pipeline.stage_diagnostics t
      @ [ ("emit", Option.value t.Pipeline.p_emit_diagnostics ~default:[]) ]);
  Format.printf "emitted plan: %d kernels@." (Plan.total_kernels t.Pipeline.p_plan);
  Format.printf "simulated: %a@." Engine.pp_metrics
    (Executor.metrics t.Pipeline.p_plan)

let compile_cmd =
  let run name verify =
    let targets =
      match name with
      | Some n -> [ find_workload n ]
      | None -> workloads
    in
    let failed = ref false in
    List.iter
      (fun w ->
        if List.length targets > 1 then Format.printf "== %s ==@." w.w_name;
        compile_one verify failed w)
      targets;
    if !failed then exit 1
  in
  let arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Run the full compilation pipeline (all workloads when none is \
          named), statically verifying every stage")
    Term.(const run $ arg $ verify_flag)

let simulate_cmd =
  let run name device =
    let w = find_workload name in
    Format.printf "device: %s@." device.Device.name;
    Format.printf "%-18s %10s %8s %10s %10s %10s@." "system" "time(ms)"
      "kernels" "DRAM(GB)" "L1(GB)" "L2(GB)";
    List.iter
      (fun (p : Plan.t) ->
        let m = (Executor.simulate ~device p).Exec.r_metrics in
        Format.printf "%-18s %10.3f %8d %10.2f %10.2f %10.2f@."
          p.Plan.plan_name m.Engine.time_ms m.Engine.kernels m.Engine.dram_gb
          m.Engine.l1_gb m.Engine.l2_gb)
      (w.w_suite ())
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute every system's schedule on a simulated device")
    Term.(const run $ workload_arg $ Cli_args.device_arg)

let run_cmd =
  let run path domains seed repeat =
    Domain_pool.set_num_domains domains;
    warn_if_oversubscribed ();
    match Parse.program_file path with
    | exception Parse.Syntax_error { line; col; message } ->
        Format.eprintf "%s:%d:%d: %s@." path line col message;
        exit 1
    | p -> (
        match Typecheck.check_program p with
        | exception Typecheck.Type_error msg ->
            Format.eprintf "%s: type error: %s@." path msg;
            exit 1
        | ty ->
            Format.printf "program %s : %s@." p.Expr.name
              (Expr.ty_to_string ty);
            let r = Rng.create seed in
            let env =
              List.map (fun (x, t) -> (x, random_value r t)) p.Expr.inputs
            in
            let out = Interp.run_program p env in
            Format.printf "interpreted over random inputs: %d scalars out@."
              (Fractal.numel out);
            let g = Build.build p in
            (match Ir.validate g with
            | Ok () ->
                Format.printf "ETDG: %d blocks, invariants ok@."
                  (List.length g.Ir.g_blocks)
            | Error es ->
                List.iter (Format.eprintf "invariant violated: %s@.") es);
            (* a tuned config in the database (FT_TUNE_DB) applies
               transparently: no search runs here, only a lookup *)
            Tune_db.install ();
            let tuned =
              Pipeline.tuned_config_for (Pipeline.source_key (read_file path))
            in
            let tile = Option.value tuned ~default:Tile.default_config in
            Option.iter
              (fun t ->
                Format.printf "tuned: %s@." (Tile.config_to_string t))
              tuned;
            let plan = Pipeline.plan_of_graph ~tile g in
            Format.printf "compiled: %a@." Engine.pp_metrics
              (Executor.metrics plan);
            (* execute the schedule for real on both engines — the
               interpreter in sequential order as the reference, and
               the compiled executor in wavefront order — and demand
               bitwise-identical outputs: the differential check behind
               the executor's determinism guarantee *)
            let seq =
              Executor.run ~opts:(Run_opts.interpreted Vm.Sequential) g env
            in
            (* a tuned config also carries the compiled engine's fusion
               and pack-blocking knobs — both bitwise-neutral, so the
               differential check below is unaffected *)
            let opts =
              {
                Run_opts.default with
                Run_opts.chunk = Some tile.Tile.cfg_vm_chunk;
                fuse = tile.Tile.cfg_fuse;
                pack = tile.Tile.cfg_pack;
              }
            in
            let pr = Executor.prepare ~opts g in
            let par = Executor.execute pr env in
            let bitwise =
              List.length seq = List.length par
              && List.for_all2
                   (fun (n1, v1) (n2, v2) ->
                     n1 = n2 && Fractal.equal_exact v1 v2)
                   seq par
            in
            Format.printf "engine: %s%s@." (Executor.engine pr)
              (match Executor.fallback_reason pr with
              | None -> ""
              | Some m -> " (" ^ m ^ ")");
            Format.printf "vm: wavefront over %d domain(s) %s sequential@."
              (Domain_pool.num_domains ())
              (if bitwise then "bitwise-matches" else "DIFFERS from");
            List.iter
              (fun (st : Vm.block_stats) ->
                Format.printf
                  "  %-40s %4d points in %3d fronts, max width %3d (%.1fx)@."
                  st.Vm.bs_block st.Vm.bs_points st.Vm.bs_fronts
                  st.Vm.bs_max_width (Vm.parallelism st))
              (Vm.wavefront_stats g);
            if repeat > 1 then begin
              (* the prepared executable is reused across timed runs —
                 steady state, no recompilation, no arena re-layout *)
              let times =
                Array.init repeat (fun _ ->
                    let t0 = Unix.gettimeofday () in
                    ignore (Executor.execute pr env);
                    (Unix.gettimeofday () -. t0) *. 1e3)
              in
              Array.sort compare times;
              let median = times.(repeat / 2) in
              let gflops = Emit.graph_flops g /. (median *. 1e6) in
              Format.printf
                "measured: median %.3f ms over %d run(s), %.2f GFLOP/s@."
                median repeat gflops
            end;
            if not bitwise then exit 1)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Parse, type-check, interpret and compile a .ft program file, then \
          execute it for real — the interpreter sequentially as the \
          reference and the compiled executor in parallel wavefront order — \
          and check the outputs are bitwise identical")
    Term.(
      const run $ Cli_args.ft_file $ Cli_args.domains_arg
      $ Cli_args.seed_arg ~default:7 $ Cli_args.repeat_arg)

let profile_cmd =
  let run path format device domains seed =
    Domain_pool.set_num_domains domains;
    warn_if_oversubscribed ();
    match Parse.program_file path with
    | exception Parse.Syntax_error { line; col; message } ->
        Format.eprintf "%s:%d:%d: %s@." path line col message;
        exit 1
    | p -> (
        match Typecheck.check_program p with
        | exception Typecheck.Type_error msg ->
            Format.eprintf "%s: type error: %s@." path msg;
            exit 1
        | _ty ->
            let sink = Trace.make () in
            (* plan cache: a hit (in-memory or FT_PLAN_CACHE on disk)
               skips the whole compile — the trace then has no compiler
               spans, only simulation and vm ones.  A tuned config in
               the database (FT_TUNE_DB) resolves first and shifts the
               cache key, so tuned and default plans coexist. *)
            Tune_db.install ~device ();
            let src = read_file path in
            let tuned = Pipeline.tuned_config_for (Pipeline.source_key src) in
            let tile = Option.value tuned ~default:Tile.default_config in
            let key = Pipeline.source_key ~tile src in
            let cached = Pipeline.Cache.mem key || Pipeline.Cache.on_disk key in
            let plan =
              if cached then Pipeline.plan_file ~tune:true path
              else begin
                let t = Pipeline.compile ~trace:sink ~tile p in
                Pipeline.Cache.store key t.Pipeline.p_plan;
                t.Pipeline.p_plan
              end
            in
            ignore (Executor.simulate ~device ~trace:sink plan);
            (* wavefront execution under the same sink: the "vm" track
               records per-block and per-front spans with widths and
               achieved parallelism.  The compiled executor emits the
               same spans as the interpreter, so the trace is engine-
               independent. *)
            let r = Rng.create seed in
            let env =
              List.map (fun (x, t) -> (x, random_value r t)) p.Expr.inputs
            in
            let g = Build.build p in
            let pr =
              Executor.prepare
                ~opts:
                  {
                    Run_opts.default with
                    Run_opts.chunk = Some tile.Tile.cfg_vm_chunk;
                    fuse = tile.Tile.cfg_fuse;
                    pack = tile.Tile.cfg_pack;
                  }
                g
            in
            Trace.with_sink sink (fun () -> ignore (Executor.execute pr env));
            let prof = Executor.profile ~device plan in
            let tuned_str =
              match tuned with
              | Some t -> Tile.config_to_string t
              | None -> "none"
            in
            (match format with
            | `Text ->
                Format.printf "plan cache: %s@."
                  (if cached then "hit" else "miss");
                Format.printf "tuned config: %s@." tuned_str;
                print_string (Profile.to_text prof);
                print_newline ();
                print_string (Trace.to_text sink)
            | `Json ->
                print_endline
                  (Jsonw.to_string
                     (Jsonw.Obj
                        [ ("plan_cache",
                           Jsonw.String (if cached then "hit" else "miss"));
                          ("tuned_config", Jsonw.String tuned_str);
                          ("profile", Profile.to_jsonv prof);
                          ("trace", Trace.to_jsonv sink) ]))
            | `Chrome -> print_endline (Trace.to_chrome sink)))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile a .ft program with tracing enabled, execute its plan on \
          the simulated device, and report per-pass wall-clock, the \
          simulated kernel timeline, and a per-kernel/per-block roofline \
          profile.  Compiled plans are cached (keyed on source contents; \
          set \\$(b,FT_PLAN_CACHE) to a directory to persist across \
          processes); the wavefront executor also runs under the trace, \
          contributing a \"vm\" track of per-front spans")
    Term.(
      const run $ Cli_args.ft_file $ Cli_args.trace_format_arg
      $ Cli_args.device_arg $ Cli_args.domains_arg
      $ Cli_args.seed_arg ~default:7)

let lint_cmd =
  let run path format =
    let ds = Lint.file path in
    (* diagnostics belong on stderr; stdout carries only the JSON
       document when one is requested — uniform across subcommands *)
    (match format with
    | `Text -> Format.eprintf "%a" (Diagnostic.pp_list ~path) ds
    | `Json ->
        print_endline (Diagnostic.list_to_json ~path ds);
        if ds <> [] then Format.eprintf "%a" (Diagnostic.pp_list ~path) ds);
    if List.exists Diagnostic.is_error ds then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check a .ft program: syntax, scoping (unused/shadowed \
          bindings), shape and depth inference, and operator-nest \
          composability — without executing anything")
    Term.(const run $ Cli_args.ft_file $ Cli_args.format_arg)

let analyze_cmd =
  let run path format =
    match Analyze.file path with
    | exception Parse.Syntax_error { line; col; message } ->
        Format.eprintf "%s:%d:%d: %s@." path line col message;
        exit 1
    | exception Typecheck.Type_error msg ->
        Format.eprintf "%s: type error: %s@." path msg;
        exit 1
    | r ->
        (match format with
        | `Text -> print_string (Analyze.to_text r)
        | `Json ->
            (* stdout carries only the JSON document; findings go to
               stderr so tooling can pipe stdout straight to a parser *)
            print_endline (Jsonw.to_string (Analyze.to_jsonv r));
            if r.Analyze.rp_diagnostics <> [] then
              Format.eprintf "%a"
                (Diagnostic.pp_list ~path)
                r.Analyze.rp_diagnostics);
        if Analyze.errors r then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static memory-effect analysis of a .ft program: per-block \
          read/write footprints with may/must precision, a race-freedom \
          verdict (proven-disjoint, unproven, or race) for every \
          wavefront anti-chain the VM would execute, dead-store and \
          uninitialized-read findings, buffer live ranges over the block \
          dataflow order, and a proposed arena layout in which buffers \
          with disjoint lifetimes share storage")
    Term.(const run $ Cli_args.ft_file $ Cli_args.format_arg)

let tune_cmd =
  let run path budget strategy oracle seed device format =
    if budget < 1 then begin
      Format.eprintf "tune: --budget must be at least 1@.";
      exit 1
    end;
    match
      Tuner.tune_file ~device ~seed ~strategy ~budget ~oracle path
    with
    | exception Parse.Syntax_error { line; col; message } ->
        Format.eprintf "%s:%d:%d: %s@." path line col message;
        exit 1
    | exception Typecheck.Type_error msg ->
        Format.eprintf "%s: type error: %s@." path msg;
        exit 1
    | report -> (
        match format with
        | `Text -> print_string (Tuner.report_to_text report)
        | `Json ->
            print_endline (Jsonw.to_string (Tuner.report_to_jsonv report)))
  in
  let budget =
    Arg.(
      value
      & opt int 32
      & info [ "budget" ] ~docv:"N"
          ~doc:"Maximum number of candidate evaluations (default 32)")
  in
  let strategy =
    Arg.(
      value
      & opt
          (enum
             [ ("grid", Search.Grid); ("greedy", Search.Greedy);
               ("evolve", Search.Evolve) ])
          Search.Grid
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Search strategy: grid (exhaustive, or a seeded uniform sample \
             when the lattice exceeds the budget), greedy (coordinate \
             descent) or evolve (seeded evolutionary search)")
  in
  let oracle =
    Arg.(
      value
      & opt (enum [ ("sim", Tuner.Sim); ("measure", Tuner.Measure) ]) Tuner.Sim
      & info [ "oracle" ] ~docv:"ORACLE"
          ~doc:
            "Cost oracle: sim (analytical roofline on the device model, \
             instant) or measure (simulated device time plus wall-clock of \
             the reference VM, median of 3)")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the tile/chunk knob space of a .ft program for the \
          best-cost configuration under an evaluation budget, report the \
          cost trajectory, and record the winner in the tuning database \
          (set \\$(b,FT_TUNE_DB) to a directory to persist it); \
          subsequent \\$(b,ftc run) / \\$(b,ftc profile) of the same file \
          apply it without re-searching")
    Term.(
      const run $ Cli_args.ft_file $ budget $ strategy $ oracle
      $ Cli_args.seed_arg ~default:2024 $ Cli_args.device_arg
      $ Cli_args.format_arg)

let plan_cache_disk_entries () =
  match Sys.getenv_opt "FT_PLAN_CACHE" with
  | None | Some "" -> None
  | Some d -> (
      match Sys.readdir d with
      | exception Sys_error _ -> Some (d, [])
      | fs ->
          Some
            ( d,
              Array.to_list fs
              |> List.filter (fun f ->
                     String.length f > 7
                     && String.sub f 0 7 = "ftplan-"
                     && Filename.check_suffix f ".bin") ))

let cache_cmd =
  let run action disk json =
    match action with
    | `Stats when json ->
        let cs = Pipeline.Cache.stats () in
        let ts = Tune_db.stats () in
        let plan_dir, plan_entries =
          match plan_cache_disk_entries () with
          | None -> (Jsonw.Null, 0)
          | Some (d, fs) -> (Jsonw.String d, List.length fs)
        in
        let tune_dir =
          match Sys.getenv_opt Tune_db.env_var with
          | None | Some "" -> Jsonw.Null
          | Some d -> Jsonw.String d
        in
        print_endline
          (Jsonw.to_string
             (Jsonw.Obj
                [
                  ( "plan_cache",
                    Jsonw.Obj
                      [
                        ("dir", plan_dir);
                        ("disk_entries", Jsonw.Int plan_entries);
                        ("hits", Jsonw.Int cs.Pipeline.Cache.hits);
                        ("misses", Jsonw.Int cs.Pipeline.Cache.misses);
                        ("disk_hits", Jsonw.Int cs.Pipeline.Cache.disk_hits);
                      ] );
                  ( "tune_db",
                    Jsonw.Obj
                      [
                        ("dir", tune_dir);
                        ( "disk_entries",
                          Jsonw.Int (List.length (Tune_db.disk_entries ())) );
                        ("hits", Jsonw.Int ts.Tune_db.hits);
                        ("misses", Jsonw.Int ts.Tune_db.misses);
                        ("disk_hits", Jsonw.Int ts.Tune_db.disk_hits);
                        ("stores", Jsonw.Int ts.Tune_db.stores);
                      ] );
                ]))
    | `Stats ->
        let cs = Pipeline.Cache.stats () in
        (match plan_cache_disk_entries () with
        | None ->
            Format.printf "plan cache: FT_PLAN_CACHE unset (memory only)@."
        | Some (d, fs) ->
            Format.printf "plan cache: %d disk entrie(s) under %s@."
              (List.length fs) d);
        Format.printf
          "  this process: %d hit(s), %d miss(es), %d disk hit(s)@."
          cs.Pipeline.Cache.hits cs.Pipeline.Cache.misses
          cs.Pipeline.Cache.disk_hits;
        let ts = Tune_db.stats () in
        (match Sys.getenv_opt Tune_db.env_var with
        | None | Some "" ->
            Format.printf "tune db:    %s unset (memory only)@."
              Tune_db.env_var
        | Some d ->
            Format.printf "tune db:    %d disk entrie(s) under %s@."
              (List.length (Tune_db.disk_entries ())) d);
        Format.printf
          "  this process: %d hit(s), %d miss(es), %d disk hit(s), %d \
           store(s)@."
          ts.Tune_db.hits ts.Tune_db.misses ts.Tune_db.disk_hits
          ts.Tune_db.stores
    | `Clear ->
        (* in-memory state dies with this process anyway; Cache.clear /
           clear_memory never touch disk — only --disk does *)
        Pipeline.Cache.clear ();
        Tune_db.clear_memory ();
        if disk then begin
          let plans =
            match plan_cache_disk_entries () with
            | None -> 0
            | Some (d, fs) ->
                List.iter
                  (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
                  fs;
                List.length fs
          in
          let tunes = Tune_db.clear_disk () in
          Format.printf "cleared %d plan(s) and %d tune record(s) from disk@."
            plans tunes
        end
        else
          Format.printf
            "cleared in-memory caches (disk entries untouched; pass --disk \
             to delete them)@."
  in
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
      & info [] ~docv:"ACTION" ~doc:"stats or clear")
  in
  let disk =
    Arg.(
      value & flag
      & info [ "disk" ]
          ~doc:
            "With clear: also delete the FT_PLAN_CACHE and FT_TUNE_DB disk \
             entries (by default only in-memory state is dropped and disk \
             entries are left alone)")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the compiled-plan cache (\\$(b,FT_PLAN_CACHE)) \
          and the tuning database (\\$(b,FT_TUNE_DB))")
    Term.(const run $ action $ disk $ Cli_args.json_flag)

let conform_cmd =
  let run seed budget oracles corpus replay json meta_iters =
    let oracles =
      match oracles with [] -> Oracles.all_oracles | names -> names
    in
    let bad =
      List.filter (fun o -> not (List.mem o Oracles.all_oracles)) oracles
    in
    if bad <> [] then begin
      Format.eprintf "conform: unknown oracle(s) %s; known: %s@."
        (String.concat ", " bad)
        (String.concat ", " Oracles.all_oracles);
      exit 1
    end;
    match replay with
    | Some target ->
        let files =
          if Sys.file_exists target && Sys.is_directory target then
            Corpus.files target
          else [ target ]
        in
        if files = [] then begin
          Format.printf "conform: no corpus files under %s@." target;
          exit 0
        end;
        let results = Conform.replay ~oracles files in
        let failed = List.filter (fun (_, r) -> r <> None) results in
        if json then
          print_endline
            (Jsonw.to_string
               (Jsonw.Obj
                  [
                    ("replayed", Jsonw.Int (List.length results));
                    ("failed", Jsonw.Int (List.length failed));
                    ( "files",
                      Jsonw.List
                        (List.map
                           (fun (f, r) ->
                             Jsonw.Obj
                               [
                                 ("file", Jsonw.String f);
                                 ( "failure",
                                   match r with
                                   | None -> Jsonw.Null
                                   | Some m -> Jsonw.String m );
                               ])
                           results) );
                  ]))
        else
          List.iter
            (fun (f, r) ->
              match r with
              | None -> Format.printf "PASS %s@." f
              | Some m -> Format.eprintf "FAIL %s: %s@." f m)
            results;
        if failed <> [] then exit 1
    | None ->
        let rp =
          Conform.run ~oracles ?corpus_dir:corpus ~meta_iters ~seed ~budget ()
        in
        if json then
          print_endline (Jsonw.to_string (Conform.report_to_jsonv rp))
        else print_string (Conform.report_to_text rp);
        if not (Conform.passed rp) then exit 1
  in
  let budget =
    Arg.(
      value & opt int 100
      & info [ "budget" ] ~docv:"K"
          ~doc:"Number of random programs to generate and cross-check")
  in
  let oracles =
    Arg.(
      value
      & opt (list ~sep:',' string) []
      & info [ "oracles" ] ~docv:"LIST"
          ~doc:
            "Comma-separated oracle subset (default: all).  interp is \
             always included — it defines the reference semantics")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Write each minimized failing program to this directory as a \
             replayable .ft file")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR|FILE.ft"
          ~doc:
            "Replay corpus files instead of generating: parse each file, \
             re-derive its inputs from the recorded seed, and re-run every \
             oracle")
  in
  let meta_iters =
    Arg.(
      value & opt int 3
      & info [ "meta-iters" ] ~docv:"N"
          ~doc:"Random trials per metamorphic law")
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Differential + metamorphic conformance run: seeded random programs \
          executed by every back end (interpreter, sequential VM, wavefront \
          VM at several domain counts, tuned configs, cache round trips) \
          with bitwise comparison, shrinking, and a minimized-repro corpus")
    Term.(
      const run
      $ Cli_args.seed_arg ~default:42
      $ budget $ oracles $ corpus $ replay $ Cli_args.json_flag $ meta_iters)

let serve_cmd =
  let run files bench json max_batch tick queue requests rate repeat seed
      domains =
    Domain_pool.set_num_domains domains;
    warn_if_oversubscribed ();
    (* tuned configs apply transparently to the serving session's
       prepared step programs, exactly as they do to [ftc run] *)
    Tune_db.install ();
    let opts = { Run_opts.default with Run_opts.domains } in
    let resolve f =
      if Sys.file_exists f then Serve.servable_of_file f
      else Serve.servable_of_name f
    in
    if bench then begin
      let cfg =
        {
          Serve.bc_seed = seed;
          bc_requests = requests;
          bc_max_batch = max_batch;
          (* --repeat keeps its shared default of 1, but a 1-repeat
             median is pure noise — lift an unset flag to the bench
             default *)
          bc_repeat =
            (if repeat > 1 then repeat
             else Serve.default_bench_cfg.Serve.bc_repeat);
          bc_queue = queue;
          bc_rate = rate;
          bc_tick_ms =
            Option.value tick
              ~default:Serve.default_bench_cfg.Serve.bc_tick_ms;
          bc_domains = domains;
        }
      in
      let names =
        match files with [] -> Servable.builtin_names | fs -> fs
      in
      let doc, errors = Serve.bench ~cfg names in
      List.iter (fun (n, e) -> Format.eprintf "serve: %s: %s@." n e) errors;
      if json then print_endline (Jsonw.to_string doc)
      else begin
        let get k kvs = List.assoc_opt k kvs in
        (match doc with
        | Jsonw.Obj top -> (
            match get "workloads" top with
            | Some (Jsonw.List ws) ->
                Format.printf "%-18s %10s %12s %12s %6s %10s@." "workload"
                  "speedup" "batched t/s" "solo t/s" "occ" "mismatches";
                List.iter
                  (function
                    | Jsonw.Obj kvs ->
                        let s k =
                          match get k kvs with
                          | Some (Jsonw.Float x) -> x
                          | Some (Jsonw.Int i) -> float_of_int i
                          | _ -> nan
                        in
                        let name =
                          match get "workload" kvs with
                          | Some (Jsonw.String n) -> n
                          | _ -> "?"
                        in
                        Format.printf "%-18s %10.3f %12.0f %12.0f %6.2f %10.0f@."
                          name (s "speedup_vs_solo")
                          (s "batched_tokens_per_s") (s "solo_tokens_per_s")
                          (s "mean_occupancy") (s "bitwise_mismatches")
                    | _ -> ())
                  ws
            | _ -> ())
        | _ -> ())
      end;
      if errors <> [] then exit 1
    end
    else begin
      if files = [] then begin
        Format.eprintf
          "serve: need a FILE.ft (or builtin: %s), or --bench@."
          (String.concat ", " Servable.builtin_names);
        exit 1
      end;
      let bad_total = ref 0 in
      List.iter
        (fun f ->
          match resolve f with
          | Error e ->
              Format.eprintf "serve: %s@." e;
              exit 1
          | Ok sv ->
              let pl =
                Loadgen.plan ~seed ~n:requests ~rate
                  ~len_lo:(max 1 (sv.Servable.sv_seq_len / 2))
                  ~len_hi:sv.Servable.sv_seq_len
              in
              let rs = Loadgen.requests sv ~seed pl in
              let o =
                Serve.run_requests ~opts ~max_batch
                  ?tick_ms:tick sv rs
              in
              let rs_solo = Loadgen.requests sv ~seed pl in
              let s = Serve.solo ~opts sv rs_solo in
              let bad = Serve.mismatches o.oc_completed s.oc_completed in
              bad_total := !bad_total + bad;
              Format.printf "workload %s (engine %s)@." sv.Servable.sv_name
                o.Serve.oc_engine;
              Format.printf "%a@." Metrics.pp o.Serve.oc_metrics;
              Format.printf "batched %s solo service (%d request(s))@."
                (if bad = 0 then "bitwise-matches" else "DIFFERS from")
                (List.length o.Serve.oc_completed))
        files;
      if !bad_total > 0 then exit 1
    end
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Programs to serve: .ft example files or builtin workload names \
             (default with --bench: every builtin)")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Benchmark mode: interleaved batched-vs-solo closed-loop medians \
             plus an open-loop bounded-queue run per workload")
  in
  let max_batch =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Batch slots (the shared batch dimension's capacity)")
  in
  let tick =
    Arg.(
      value & opt (some float) None
      & info [ "tick" ] ~docv:"MS"
          ~doc:
            "Tick deadline in milliseconds (wall pacing); unset runs in \
             virtual time")
  in
  let queue =
    Arg.(
      value & opt int 4
      & info [ "queue" ] ~docv:"N"
          ~doc:"Broker queue bound for the open-loop (backpressure) phase")
  in
  let requests =
    Arg.(
      value & opt int 32
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per closed-loop run")
  in
  let rate =
    Arg.(
      value & opt float 2.0
      & info [ "rate" ] ~docv:"R" ~doc:"Arrivals per tick (Poisson)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Continuous-batching inference serving over the compiled wavefront \
          engine: requests join and leave the shared batch mid-sequence, \
          every tick is one executor run, and batched service is checked \
          bitwise against serving each request alone")
    Term.(
      const run $ files $ bench $ Cli_args.json_flag $ max_batch $ tick
      $ queue $ requests $ rate $ Cli_args.repeat_arg
      $ Cli_args.seed_arg ~default:2024
      $ Cli_args.domains_arg)

let shard_cmd =
  let run target devices strategy link device seed json =
    if devices < 1 then begin
      Format.eprintf "shard: --devices must be at least 1@.";
      exit 1
    end;
    let p =
      if Sys.file_exists target then (
        match Parse.program_file target with
        | exception Parse.Syntax_error { line; col; message } ->
            Format.eprintf "%s:%d:%d: %s@." target line col message;
            exit 1
        | p -> p)
      else (find_workload target).w_program ()
    in
    let g = Build.build p in
    (match Ir.validate g with
    | Ok () -> ()
    | Error es ->
        List.iter (Format.eprintf "invariant violated: %s@.") es;
        exit 1);
    let rng = Rng.create seed in
    let inputs =
      List.map (fun (x, t) -> (x, random_value rng t)) p.Expr.inputs
    in
    match Dist.differential ?strategy ~link ~device ~devices g inputs with
    | exception Dist.Illegal_plan diags ->
        Format.eprintf "shard: plan statically refuted:@.%a@."
          (Diagnostic.pp_list ?path:None) diags;
        exit 1
    | rep, bitwise ->
        (* the same run on one device, through the same model, anchors
           the scaling number *)
        let base = Dist.run ~link ~device ~devices:1 g inputs in
        let speedup =
          if rep.Dist.rp_sim.Engine.dm_time_ms > 0.0 then
            base.Dist.rp_sim.Engine.dm_time_ms
            /. rep.Dist.rp_sim.Engine.dm_time_ms
          else 0.0
        in
        if json then begin
          let shard_json (_, sh) =
            Jsonw.Obj
              [
                ("block", Jsonw.String sh.Shard.sh_block);
                ( "strategy",
                  Jsonw.String (Shard.strategy_name sh.Shard.sh_strategy) );
                ("axis", Jsonw.Int sh.Shard.sh_axis);
                ("chunk", Jsonw.Int sh.Shard.sh_chunk);
                ("halo", Jsonw.Int sh.Shard.sh_halo);
              ]
          in
          print_endline
            (Jsonw.to_string
               (Jsonw.Obj
                  [
                    ("program", Jsonw.String p.Expr.name);
                    ("devices", Jsonw.Int devices);
                    ("strategy", Jsonw.String rep.Dist.rp_strategy);
                    ("link", Jsonw.String rep.Dist.rp_link.Device.link_name);
                    ("bitwise_equal", Jsonw.Bool bitwise);
                    ("transfers", Jsonw.Int rep.Dist.rp_xfers);
                    ("device_transfers", Jsonw.Int rep.Dist.rp_device_xfers);
                    ("transfer_gb", Jsonw.Float rep.Dist.rp_xfer_gb);
                    ( "sim_time_ms",
                      Jsonw.Float rep.Dist.rp_sim.Engine.dm_time_ms );
                    ( "sim_time_1dev_ms",
                      Jsonw.Float base.Dist.rp_sim.Engine.dm_time_ms );
                    ("speedup_vs_1dev", Jsonw.Float speedup);
                    ( "fallbacks",
                      Jsonw.Int
                        (List.length rep.Dist.rp_log.Dist_exec.lg_fallbacks)
                    );
                    ( "shards",
                      Jsonw.List
                        (List.map shard_json rep.Dist.rp_plan.Shard.pl_blocks)
                    );
                  ]))
        end
        else begin
          Format.printf "program %s across %d device(s), strategy %s, %s@."
            p.Expr.name devices rep.Dist.rp_strategy
            rep.Dist.rp_link.Device.link_name;
          List.iter
            (fun (_, sh) -> Format.printf "  %a@." Shard.pp_shard sh)
            rep.Dist.rp_plan.Shard.pl_blocks;
          List.iter
            (fun d -> Format.printf "  %a@." (Diagnostic.pp ?path:None) d)
            rep.Dist.rp_diags;
          Format.printf
            "executed: %d transfer(s), %d device-to-device, %.3f MB moved@."
            rep.Dist.rp_xfers rep.Dist.rp_device_xfers
            (rep.Dist.rp_xfer_gb *. 1e3);
          Format.printf "simulated: %a@." Engine.pp_dist_metrics
            rep.Dist.rp_sim;
          Format.printf "speedup vs 1 device: %.2fx (%.3f ms -> %.3f ms)@."
            speedup base.Dist.rp_sim.Engine.dm_time_ms
            rep.Dist.rp_sim.Engine.dm_time_ms;
          Format.printf "%s the single-device compiled engine@."
            (if bitwise then "bitwise-identical to" else "DIFFERS from")
        end;
        if not bitwise then exit 1
  in
  let target =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Program to shard: a .ft file or a builtin workload name")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Shard the ETDG across simulated devices: partition, statically \
          verify, execute each shard on its own OCaml domain with explicit \
          transfers, check bitwise against the single-device compiled \
          engine, and price the run on the interconnect model")
    Term.(
      const run $ target $ Cli_args.devices_arg $ Cli_args.strategy_arg
      $ Cli_args.link_arg $ Cli_args.device_arg
      $ Cli_args.seed_arg ~default:42
      $ Cli_args.json_flag)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ftc" ~version:"1.0"
      ~doc:"FractalTensor compiler driver (SOSP 2024 reproduction)"
  in
  exit
    (Cmd.eval (Cmd.group ~default info
                 [ list_cmd; verify_cmd; show_cmd; compile_cmd; simulate_cmd;
                   run_cmd; profile_cmd; analyze_cmd; tune_cmd; cache_cmd;
                   lint_cmd; conform_cmd; serve_cmd; shard_cmd ]))
