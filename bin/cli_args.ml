(* One spelling for every flag the ftc subcommands share.

   Before this module each subcommand declared its own --format /
   --domains / --seed / --json / --repeat, and the docstrings (and
   occasionally the accepted values) drifted apart.  Declaring each
   flag exactly once makes `ftc <cmd> --help` literally identical
   across subcommands for the shared flags — the CLI test suite
   asserts it by diffing the help paragraphs. *)

open Cmdliner

let ft_file =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"FILE.ft")

(* text|json: every report-producing subcommand (lint, analyze, tune). *)
let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: text or json")

(* text|json|chrome: subcommands that can also emit a trace-event file. *)
let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("chrome", `Chrome) ])
        `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Output format: text (profile report + trace listing), json \
           (profile and trace in one document), or chrome (trace-event \
           JSON for chrome://tracing / Perfetto)")

(* text|dot: structure dumps. *)
let show_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("dot", `Dot) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: text or dot")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Size of the domain pool the wavefront executor runs on \
           (default: \\$(b,FT_NUM_DOMAINS) when set, else the machine's \
           recommended domain count)")

let device_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("a100", Device.a100); ("h100", Device.h100);
             ("v100", Device.v100) ])
        Device.a100
    & info [ "device" ] ~docv:"DEVICE" ~doc:"Device model: a100, h100 or v100")

let devices_arg =
  Arg.(
    value & opt int 2
    & info [ "devices" ] ~docv:"N"
        ~doc:
          "Simulated devices to shard across; each shard executes on its \
           own OCaml domain")

let strategy_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("auto", None); ("batch", Some Shard.Batch);
             ("sequence", Some Shard.Sequence);
             ("pipeline", Some Shard.Pipeline);
             ("replicate", Some Shard.Replicate) ])
        None
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Partitioning strategy: auto (per-block), batch (free axis), \
           sequence (dependence axis + halo), pipeline (blocks \
           round-robin) or replicate")

let link_arg =
  Arg.(
    value
    & opt (enum [ ("nvlink", Device.nvlink); ("pcie", Device.pcie) ])
        Device.nvlink
    & info [ "link" ] ~docv:"LINK"
        ~doc:"Interconnect model for transfers: nvlink or pcie")

let seed_arg ~default =
  Arg.(
    value & opt int default
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"PRNG seed: the run is a pure function of it")

let json_flag =
  Arg.(
    value & flag & info [ "json" ] ~doc:"Emit the report as a JSON document")

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Timed executions of the prepared plan (median wall-clock is \
           reported); the executable is compiled once and reused")
